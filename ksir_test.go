package ksir

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// corpus builds a two-topic training corpus: soccer and basketball posts.
func corpus(n int) []string {
	soccer := []string{"goal", "striker", "keeper", "league", "derby", "penalty", "midfield", "champions"}
	basket := []string{"dunk", "rebound", "playoffs", "court", "buzzer", "triple", "assist", "quarter"}
	rng := rand.New(rand.NewSource(3))
	texts := make([]string, n)
	for i := range texts {
		words := soccer
		if i%2 == 1 {
			words = basket
		}
		var b []string
		for j := 0; j < 6; j++ {
			b = append(b, words[rng.Intn(len(words))])
		}
		texts[i] = strings.Join(b, " ")
	}
	return texts
}

func trainTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := TrainModel(corpus(200), WithTopics(2), WithIterations(40), WithSeed(1),
		WithPriors(0.5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainModelValidation(t *testing.T) {
	if _, err := TrainModel(nil); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := TrainModel(corpus(10), WithTopics(1)); err == nil {
		t.Error("1 topic accepted")
	}
	if _, err := TrainModel([]string{"a b", "c d"}, WithTopics(40)); err == nil {
		t.Error("tiny vocab accepted")
	}
}

func TestModelAccessors(t *testing.T) {
	m := trainTestModel(t)
	if m.Topics() != 2 {
		t.Errorf("Topics = %d", m.Topics())
	}
	if m.VocabSize() == 0 {
		t.Error("empty vocab")
	}
	words, err := m.TopWords(0, 5)
	if err != nil || len(words) != 5 {
		t.Fatalf("TopWords: %v %v", words, err)
	}
	if _, err := m.TopWords(9, 5); err == nil {
		t.Error("out-of-range topic accepted")
	}
	topics, probs := m.InferTopics("goal league derby")
	if len(topics) == 0 || len(topics) != len(probs) {
		t.Errorf("InferTopics = %v %v", topics, probs)
	}
}

func TestStreamEndToEnd(t *testing.T) {
	m := trainTestModel(t)
	st, err := New(m, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Feed 200 posts over 100 minutes: even IDs soccer, odd basketball;
	// a few soccer posts get heavily referenced.
	base := int64(1)
	for i := 0; i < 200; i++ {
		text := "goal striker league derby"
		if i%2 == 1 {
			text = "dunk rebound playoffs court"
		}
		p := Post{ID: int64(i + 1), Time: base + int64(i*30), Text: text}
		if i > 10 && i%2 == 0 {
			p.Refs = []int64{1} // retweet an early soccer post
		}
		if err := st.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(base + 200*30); err != nil {
		t.Fatal(err)
	}
	if st.Active() == 0 {
		t.Fatal("no active posts")
	}

	res, err := st.Query(context.Background(), Query{K: 5, Keywords: []string{"goal", "league"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) == 0 || res.Score <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	// The soccer query must return mostly soccer posts. (The inferred
	// query vector retains a few percent of mass on the other topic, so
	// with this tiny 4-word-per-topic corpus a trailing result slot can
	// legitimately go to a basketball post once soccer words saturate.)
	soccer := 0
	for _, p := range res.Posts {
		if strings.Contains(p.Text, "goal") {
			soccer++
		}
	}
	if soccer*2 <= len(res.Posts) {
		t.Errorf("only %d/%d on-topic posts", soccer, len(res.Posts))
	}
	if !strings.Contains(res.Posts[0].Text, "goal") {
		t.Errorf("top post off-topic: %q", res.Posts[0].Text)
	}
	if res.Evaluated <= 0 || res.Active <= 0 {
		t.Errorf("missing counters: evaluated %d active %d", res.Evaluated, res.Active)
	}
}

func TestStreamQueryAlgorithms(t *testing.T) {
	m := trainTestModel(t)
	st, err := New(m, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		text := "goal striker league"
		if i%2 == 1 {
			text = "dunk rebound playoffs"
		}
		if err := st.Add(Post{ID: int64(i + 1), Time: int64(1 + i*10), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(500); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{MTTD, MTTS, TopK} {
		res, err := st.Query(context.Background(), Query{K: 3, Keywords: []string{"dunk"}, Algorithm: alg})
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if len(res.Posts) == 0 {
			t.Errorf("alg %d returned nothing", alg)
		}
	}
	if _, err := st.Query(context.Background(), Query{K: 3, Keywords: []string{"dunk"}, Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestStreamQueryByVector(t *testing.T) {
	m := trainTestModel(t)
	st, err := New(m, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		text := "goal striker league"
		if i%2 == 1 {
			text = "dunk rebound playoffs"
		}
		if err := st.Add(Post{ID: int64(i + 1), Time: int64(1 + i*10), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(400); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(context.Background(), Query{K: 3, Vector: map[int]float64{0: 2, 1: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) == 0 {
		t.Error("vector query returned nothing")
	}
	// Invalid vectors.
	if _, err := st.Query(context.Background(), Query{K: 3, Vector: map[int]float64{7: 1}}); err == nil {
		t.Error("out-of-range topic accepted")
	}
	if _, err := st.Query(context.Background(), Query{K: 3, Vector: map[int]float64{0: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := st.Query(context.Background(), Query{K: 3, Vector: map[int]float64{0: 0}}); err == nil {
		t.Error("zero vector accepted")
	}
}

func TestStreamValidation(t *testing.T) {
	m := trainTestModel(t)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(m, Options{Window: time.Minute, Bucket: time.Hour}); err == nil {
		t.Error("bucket > window accepted")
	}
	st, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 1, Time: 0}); err == nil {
		t.Error("zero time accepted")
	}
	if err := st.Add(Post{ID: 1, Time: 100, Text: "goal"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 2, Time: 50, Text: "goal"}); err == nil {
		t.Error("out-of-order post accepted")
	}
	if err := st.Flush(10); err == nil {
		t.Error("flush before last post accepted")
	}
	if _, err := st.Query(context.Background(), Query{K: 0, Keywords: []string{"goal"}}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := st.Query(context.Background(), Query{K: 3}); err == nil {
		t.Error("query without keywords or vector accepted")
	}
	if _, err := st.Query(context.Background(), Query{K: 3, Keywords: []string{"zzzzunknown"}}); err == nil {
		t.Error("all-unknown keywords accepted")
	}
}

func TestStreamExpiry(t *testing.T) {
	m := trainTestModel(t)
	st, err := New(m, Options{Window: 10 * time.Second, Bucket: time.Second, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := st.Add(Post{ID: int64(i + 1), Time: int64(1 + i), Text: "goal striker"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(20); err != nil {
		t.Fatal(err)
	}
	firstActive := st.Active()
	// Jump far ahead: everything expires.
	if err := st.Flush(1000); err != nil {
		t.Fatal(err)
	}
	if st.Active() != 0 {
		t.Errorf("active = %d after drain (was %d)", st.Active(), firstActive)
	}
	res, err := st.Query(context.Background(), Query{K: 3, Keywords: []string{"goal"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) != 0 {
		t.Errorf("query on drained stream returned %d posts", len(res.Posts))
	}
}

func TestBucketingMakesPostsVisibleLazily(t *testing.T) {
	m := trainTestModel(t)
	st, err := New(m, Options{Window: time.Hour, Bucket: 10 * time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 1, Time: 30, Text: "goal striker"}); err != nil {
		t.Fatal(err)
	}
	// Not yet visible: its bucket has not completed.
	if st.Active() != 0 {
		t.Error("post visible before bucket completion")
	}
	// A post in the next bucket forces the first bucket's ingestion.
	if err := st.Add(Post{ID: 2, Time: 700, Text: "dunk rebound"}); err != nil {
		t.Fatal(err)
	}
	if st.Active() != 1 {
		t.Errorf("active = %d, want 1 (first bucket flushed)", st.Active())
	}
	if err := st.Flush(700); err != nil {
		t.Fatal(err)
	}
	if st.Active() != 2 {
		t.Errorf("active = %d, want 2", st.Active())
	}
}

func ExampleStream_Query() {
	model, err := TrainModel([]string{
		"goal striker league derby penalty",
		"goal keeper champions league final",
		"dunk rebound playoffs court buzzer",
		"dunk triple playoffs quarter court",
		"striker penalty goal midfield derby",
		"rebound court playoffs dunk buzzer",
	}, WithTopics(2), WithIterations(30), WithSeed(7), WithPriors(0.5, 0.01))
	if err != nil {
		panic(err)
	}
	st, err := New(model, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		panic(err)
	}
	st.Add(Post{ID: 1, Time: 10, Text: "late goal wins the derby"})
	st.Add(Post{ID: 2, Time: 20, Text: "what a dunk in the playoffs"})
	st.Flush(60)
	res, err := st.Query(context.Background(), Query{K: 1, Keywords: []string{"league", "goal"}})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Posts), res.Posts[0].ID)
	// Output: 1 1
}
