// Package apiv1 defines the wire contract of the k-SIR service's /v1 HTTP
// API: request/response bodies, the structured error envelope, and the
// two-way mapping between the library's typed errors (ksir.Err*) and wire
// error codes / HTTP status codes. Both the server (internal/server) and
// the Go SDK (client) build on it, so a round trip preserves error
// identity: errors.Is(err, ksir.ErrOutOfOrder) holds on the client side
// exactly when it held on the server side.
//
// Routes (all stream-scoped routes 404 with CodeUnknownStream for an
// unregistered name):
//
//	POST   /v1/streams                      CreateStreamRequest → 201 StreamInfo
//	GET    /v1/streams                      → ListStreamsResponse
//	DELETE /v1/streams/{name}              → 204
//	POST   /v1/streams/{name}/posts        Post or [Post,...] → 202 AcceptedResponse
//	POST   /v1/streams/{name}/flush        FlushRequest → FlushResponse
//	POST   /v1/streams/{name}/query        QueryRequest → QueryResponse
//	GET    /v1/streams/{name}/stats        → StreamInfo
//	GET    /v1/streams/{name}/subscribe    → text/event-stream (SSE)
//	POST   /v1/streams/{name}/checkpoint   → StreamInfo (durable servers;
//	       409 persist_disabled without -data-dir)
//	POST   /v1/streams/{name}/hibernate    → StreamInfo (durable servers;
//	       409 persist_disabled without -data-dir, 409 stream_busy while
//	       standing queries are registered)
//
// SSE: each refresh of the standing query is one event
//
//	event: refresh
//	id: <bucket sequence number>
//	data: <QueryResponse JSON>
//
// The id field and the QueryResponse's "bucket" field both carry the
// bucket sequence the refresh was computed at (the snapshot-visibility
// contract in wire terms); with only_changed=true, refreshes whose result
// set is unchanged are suppressed, so consecutive ids can jump.
package apiv1

import (
	"errors"
	"net/http"

	ksir "github.com/social-streams/ksir"
)

// Post is the wire form of one post.
type Post struct {
	ID   int64   `json:"id"`
	Time int64   `json:"time"`
	Text string  `json:"text"`
	Refs []int64 `json:"refs,omitempty"`
}

// CreateStreamRequest registers a new stream. Zero-valued fields inherit
// the server's defaults. Lambda is a pointer so that the pure-influence
// setting λ=0 is distinguishable from "unset".
type CreateStreamRequest struct {
	Name      string   `json:"name"`
	WindowSec int64    `json:"window_sec,omitempty"`
	BucketSec int64    `json:"bucket_sec,omitempty"`
	Lambda    *float64 `json:"lambda,omitempty"`
	Eta       float64  `json:"eta,omitempty"`
}

// Stream residency states (StreamInfo.State). Hibernated streams stay
// fully operational over the wire: their first post, query or
// subscription transparently reactivates them.
const (
	StateResident   = "resident"
	StateHibernated = "hibernated"
)

// StreamInfo describes one stream: its configuration and its counters as
// of the last published bucket. Persist is present only on durable
// deployments (a server started with -data-dir). For a hibernated stream
// the engine counters (Active, Now, Bucket, Elements) are the values
// captured at hibernation — or zero for a cold-recovered stream never yet
// touched — and stats/list requests never reactivate it.
type StreamInfo struct {
	Name          string  `json:"name"`
	Active        int     `json:"active"`
	Now           int64   `json:"now"`
	Bucket        int64   `json:"bucket"`
	Subscriptions int     `json:"subscriptions"`
	Elements      int64   `json:"elements"`
	WindowSec     int64   `json:"window_sec"`
	BucketSec     int64   `json:"bucket_sec"`
	Lambda        float64 `json:"lambda"`
	Eta           float64 `json:"eta"`
	// State is resident or hibernated (see the State* constants).
	State     string         `json:"state"`
	Residency *ResidencyInfo `json:"residency,omitempty"`
	Persist   *PersistInfo   `json:"persist,omitempty"`
	Pipeline  *PipelineInfo  `json:"pipeline,omitempty"`
	SSE       *SSEInfo       `json:"sse,omitempty"`
}

// SSEInfo reports a stream's live SSE subscription counters (served by
// internal/server; absent from embedding deployments without the server).
type SSEInfo struct {
	// Subscribers is the number of currently connected SSE consumers.
	Subscribers int64 `json:"subscribers"`
	// Dropped counts refresh events shed by drop-oldest backpressure over
	// the server's lifetime: a consumer fell more than the event buffer
	// behind and its oldest pending refresh was replaced by a newer one
	// (the standing query is a state feed — the latest refresh wins).
	Dropped int64 `json:"dropped"`
}

// ResidencyInfo reports a stream's hot/cold transition counters (the wire
// form of ksir.ResidencyStats).
type ResidencyInfo struct {
	// Hibernations and Activations count residency transitions since the
	// server started.
	Hibernations int64 `json:"hibernations"`
	Activations  int64 `json:"activations"`
	// LastActivationUs is the cost of the most recent reactivation
	// (checkpoint load + WAL tail replay) in microseconds, 0 before the
	// first one.
	LastActivationUs int64 `json:"last_activation_us"`
	// ResidentBytes approximates the stream's in-memory footprint
	// (0 while hibernated).
	ResidentBytes int64 `json:"resident_bytes"`
	// PrefetchActivations counts activations initiated by the predictive
	// prefetcher; PrefetchHits of those were demand-touched while still
	// resident, PrefetchMisses went back to sleep untouched (or arrived
	// after demand already had the stream hot).
	PrefetchActivations int64 `json:"prefetch_activations,omitempty"`
	PrefetchHits        int64 `json:"prefetch_hits,omitempty"`
	PrefetchMisses      int64 `json:"prefetch_misses,omitempty"`
	// GhostHits counts reactivations that found the stream on the ghost
	// list of recent evictions (evicted just before it was wanted again).
	GhostHits int64 `json:"ghost_hits,omitempty"`
	// SecondChanceSaves counts eviction passes the stream survived
	// because its second-chance bit or an in-flight prefetch protected it.
	SecondChanceSaves int64 `json:"second_chance_saves,omitempty"`
	// LazyMaterializations counts deferred back-buffer builds paid off
	// the activation critical path.
	LazyMaterializations int64 `json:"lazy_materializations,omitempty"`
}

// PersistInfo reports a durable stream's WAL and checkpoint counters (the
// wire form of ksir.PersistStats).
type PersistInfo struct {
	// WALSeq is the last durable operation sequence number; it grows
	// monotonically across checkpoints and restarts.
	WALSeq uint64 `json:"wal_seq"`
	// WALBytes is the live WAL segment size (0 right after a checkpoint).
	WALBytes int64 `json:"wal_bytes"`
	// CheckpointBucket is the bucket sequence covered by the latest
	// checkpoint, -1 if none has been taken yet.
	CheckpointBucket int64 `json:"checkpoint_bucket"`
	// Checkpoints counts checkpoints taken since the server started.
	Checkpoints int64 `json:"checkpoints"`
}

// PipelineInfo reports a stream's writer-pipeline counters (the wire form
// of ksir.PipelineStats): how deep the ingest queue currently is and how
// much coalescing the group-commit writer achieved.
type PipelineInfo struct {
	// QueueDepth is the number of write operations queued behind the
	// stream's writer goroutine at the instant of the stats call.
	QueueDepth int `json:"queue_depth"`
	// Ops counts write operations committed over the stream's lifetime.
	Ops int64 `json:"ops"`
	// Batches counts commit batches; Ops/Batches is the mean batch size.
	Batches int64 `json:"batches"`
	// MeanBatchSize is the average number of operations per commit batch
	// (0 before the first commit).
	MeanBatchSize float64 `json:"mean_batch_size"`
	// Fsyncs counts WAL fsyncs issued for the stream (0 without -data-dir).
	Fsyncs int64 `json:"fsyncs"`
	// FsyncsPerOp is Fsyncs/Ops — the amortized durability cost; 1.0
	// matches a serialized writer at fsync=always, and it falls toward
	// 1/MeanBatchSize as concurrent producers coalesce.
	FsyncsPerOp float64 `json:"fsyncs_per_op"`
}

// ListStreamsResponse is the GET /v1/streams body.
type ListStreamsResponse struct {
	Streams []StreamInfo `json:"streams"`
}

// AcceptedResponse reports how many posts of a batch were ingested.
type AcceptedResponse struct {
	Accepted int `json:"accepted"`
}

// FlushRequest advances the stream clock.
type FlushRequest struct {
	Now int64 `json:"now"`
}

// FlushResponse reports the stream state after a flush.
type FlushResponse struct {
	Active int   `json:"active"`
	Now    int64 `json:"now"`
	Bucket int64 `json:"bucket"`
}

// QueryRequest is the wire form of a k-SIR query.
type QueryRequest struct {
	K        int             `json:"k"`
	Keywords []string        `json:"keywords,omitempty"`
	Vector   map[int]float64 `json:"vector,omitempty"`
	Epsilon  float64         `json:"epsilon,omitempty"`
	// Algorithm is mttd (default) | mtts | topk.
	Algorithm string `json:"algorithm,omitempty"`
	Explain   bool   `json:"explain,omitempty"`
}

// QueryResponse carries the result and optional explanations. Bucket is
// the ingested-bucket sequence number the query observed (snapshot
// visibility: all other fields are consistent with exactly that bucket).
type QueryResponse struct {
	Posts     []ksir.Post        `json:"posts"`
	Score     float64            `json:"score"`
	Evaluated int                `json:"evaluated"`
	Active    int                `json:"active"`
	Bucket    int64              `json:"bucket"`
	Explain   []ksir.Explanation `json:"explain,omitempty"`
}

// ErrorBody is the structured error every non-2xx response carries.
type ErrorBody struct {
	// Code is one of the Code* constants — the stable, programmatic key.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON shape of an error response:
//
//	{"error": {"code": "out_of_order", "message": "..."}}
type ErrorEnvelope struct {
	Err ErrorBody `json:"error"`
	// Accepted is set on partially applied batch ingests: how many posts
	// of the batch were accepted before the rejected one. The accepted
	// prefix stays in the stream (visible after its bucket boundary); the
	// rejected post is the batch's element at index Accepted — fix or
	// drop it and resend the batch from that index.
	Accepted *int `json:"accepted,omitempty"`
}

// Wire error codes. Each corresponds to one sentinel of the library's
// error taxonomy (plus bad_request and internal for transport-level
// failures that never reached the library).
const (
	CodeBadRequest      = "bad_request"
	CodeBadOptions      = "bad_options"
	CodeBadPost         = "bad_post"
	CodeOutOfOrder      = "out_of_order"
	CodeBadQuery        = "bad_query"
	CodeBadSubscription = "bad_subscription"
	CodeUnknownStream   = "unknown_stream"
	CodeStreamExists    = "stream_exists"
	CodeStreamClosed    = "stream_closed"
	// CodeStreamBusy: a residency transition refused while the stream is
	// in use (hibernating with standing queries registered).
	CodeStreamBusy = "stream_busy"
	CodeNotActive  = "not_active"
	// CodeModelVersion: an on-disk artifact (model file, checkpoint, WAL)
	// from an incompatible format version or a different model.
	CodeModelVersion = "model_version"
	// CodePersist: a durability failure — the operation may have been
	// applied in memory but could not be made durable.
	CodePersist = "persist_failure"
	// CodePersistDisabled: a durability operation (e.g. forcing a
	// checkpoint) on a server running without -data-dir.
	CodePersistDisabled = "persist_disabled"
	CodeInternal        = "internal"
)

// errClass ties together a sentinel, its wire code and its HTTP status.
type errClass struct {
	sentinel error
	code     string
	status   int
}

var errClasses = []errClass{
	{ksir.ErrBadOptions, CodeBadOptions, http.StatusBadRequest},
	{ksir.ErrBadPost, CodeBadPost, http.StatusBadRequest},
	{ksir.ErrOutOfOrder, CodeOutOfOrder, http.StatusConflict},
	{ksir.ErrBadQuery, CodeBadQuery, http.StatusBadRequest},
	{ksir.ErrBadSubscription, CodeBadSubscription, http.StatusBadRequest},
	{ksir.ErrUnknownStream, CodeUnknownStream, http.StatusNotFound},
	{ksir.ErrStreamExists, CodeStreamExists, http.StatusConflict},
	{ksir.ErrStreamClosed, CodeStreamClosed, http.StatusGone},
	{ksir.ErrStreamBusy, CodeStreamBusy, http.StatusConflict},
	{ksir.ErrNotActive, CodeNotActive, http.StatusConflict},
	{ksir.ErrModelVersion, CodeModelVersion, http.StatusInternalServerError},
	{ksir.ErrPersist, CodePersist, http.StatusInternalServerError},
	{ksir.ErrPersistDisabled, CodePersistDisabled, http.StatusConflict},
}

// Classify maps a library error to its wire code and HTTP status. Errors
// outside the taxonomy classify as internal/500.
func Classify(err error) (code string, status int) {
	for _, c := range errClasses {
		if errors.Is(err, c.sentinel) {
			return c.code, c.status
		}
	}
	return CodeInternal, http.StatusInternalServerError
}

// Sentinel maps a wire code back to the library sentinel it stands for,
// so SDK callers can errors.Is against ksir.Err* across the wire. Unknown
// codes (including internal and bad_request) return nil.
func Sentinel(code string) error {
	for _, c := range errClasses {
		if c.code == code {
			return c.sentinel
		}
	}
	return nil
}
