package ksir

import (
	"fmt"

	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Model bundles everything needed to turn raw text into topic space: the
// tokenizer, the vocabulary, the trained topic model and the fold-in
// inferencer. Train one offline on a representative corpus, then share it
// across streams and queries; retrain when topic drift makes it stale
// (§3.1 of the paper).
type Model struct {
	tok   *textproc.Tokenizer
	vocab *textproc.Vocabulary
	tm    *topicmodel.Model
	inf   *topicmodel.Inferencer
	seed  int64
}

// ModelOption configures TrainModel.
type ModelOption func(*modelConfig)

type modelConfig struct {
	topics      int
	iterations  int
	seed        int64
	useBTM      bool
	minDocFreq  int64
	maxDocFrac  float64
	alpha, beta float64
}

// WithTopics sets the number of latent topics z (default 50, the paper's
// default).
func WithTopics(z int) ModelOption { return func(c *modelConfig) { c.topics = z } }

// WithIterations sets the Gibbs sweeps for training (default 100).
func WithIterations(n int) ModelOption { return func(c *modelConfig) { c.iterations = n } }

// WithSeed fixes the training RNG for reproducible models.
func WithSeed(seed int64) ModelOption { return func(c *modelConfig) { c.seed = seed } }

// WithBTM trains a biterm topic model instead of LDA. Use it for
// tweet-length texts, as the paper does for the Twitter corpus.
func WithBTM() ModelOption { return func(c *modelConfig) { c.useBTM = true } }

// WithPriors overrides the Dirichlet priors. The defaults (α = 50/z,
// β = 0.01, the paper's settings) suit z ≥ 50; with very few topics use a
// smaller α (e.g. 1) or the prior swamps the data and topics fail to
// separate.
func WithPriors(alpha, beta float64) ModelOption {
	return func(c *modelConfig) {
		c.alpha = alpha
		c.beta = beta
	}
}

// WithVocabPruning drops words appearing in fewer than minDocFreq documents
// or in more than maxDocFrac of all documents before training (the paper's
// stop/noise-word preprocessing). Defaults: 2 and 0.5.
func WithVocabPruning(minDocFreq int64, maxDocFrac float64) ModelOption {
	return func(c *modelConfig) {
		c.minDocFreq = minDocFreq
		c.maxDocFrac = maxDocFrac
	}
}

// TrainModel tokenizes the corpus, prunes the vocabulary, and trains a
// topic model (LDA by default, BTM with WithBTM) with the paper's priors
// α = 50/z, β = 0.01.
func TrainModel(texts []string, opts ...ModelOption) (*Model, error) {
	cfg := modelConfig{topics: 50, iterations: 100, minDocFreq: 2, maxDocFrac: 0.5}
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("ksir: empty training corpus")
	}
	if cfg.topics < 2 {
		return nil, fmt.Errorf("ksir: need at least 2 topics, got %d", cfg.topics)
	}

	tok := textproc.NewTokenizer()
	corpus := textproc.NewCorpus(tok, texts)
	pruned, remap := corpus.Vocab.Prune(len(corpus.Docs), cfg.minDocFreq, cfg.maxDocFrac)
	if pruned.Size() < cfg.topics {
		return nil, fmt.Errorf("ksir: vocabulary too small after pruning (%d words for %d topics); provide more text or relax WithVocabPruning",
			pruned.Size(), cfg.topics)
	}
	docs := make([][]textproc.WordID, 0, len(corpus.Docs))
	for _, d := range corpus.Docs {
		var ids []textproc.WordID
		for _, tc := range d.Terms {
			if nid := remap[tc.Word]; nid >= 0 {
				for i := int32(0); i < tc.Count; i++ {
					ids = append(ids, nid)
				}
			}
		}
		docs = append(docs, ids)
	}

	var tm *topicmodel.Model
	var err error
	if cfg.useBTM {
		tm, _, err = topicmodel.TrainBTM(docs, topicmodel.BTMConfig{
			Topics: cfg.topics, VocabSize: pruned.Size(),
			Alpha: cfg.alpha, Beta: cfg.beta,
			Iterations: cfg.iterations, Seed: cfg.seed,
		})
	} else {
		tm, _, err = topicmodel.TrainLDA(docs, topicmodel.LDAConfig{
			Topics: cfg.topics, VocabSize: pruned.Size(),
			Alpha: cfg.alpha, Beta: cfg.beta,
			Iterations: cfg.iterations, Seed: cfg.seed,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("ksir: training failed: %w", err)
	}
	return &Model{
		tok:   tok,
		vocab: pruned,
		tm:    tm,
		inf:   topicmodel.NewInferencer(tm, cfg.seed),
		seed:  cfg.seed,
	}, nil
}

// Topics returns the number of latent topics z.
func (m *Model) Topics() int { return m.tm.Z }

// VocabSize returns the pruned vocabulary size.
func (m *Model) VocabSize() int { return m.vocab.Size() }

// TopWords returns the n highest-probability words of one topic — useful
// for inspecting what a trained topic means.
func (m *Model) TopWords(topic, n int) ([]string, error) {
	if topic < 0 || topic >= m.tm.Z {
		return nil, fmt.Errorf("ksir: topic %d out of range [0,%d)", topic, m.tm.Z)
	}
	type ww struct {
		w textproc.WordID
		p float64
	}
	all := make([]ww, m.vocab.Size())
	for w := 0; w < m.vocab.Size(); w++ {
		all[w] = ww{textproc.WordID(w), m.tm.TopicWord(topic, textproc.WordID(w))}
	}
	// Partial selection sort: n is small.
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].p > all[best].p {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		out = append(out, m.vocab.Word(all[i].w))
	}
	return out, nil
}

// tokenIDs maps raw text to in-vocabulary token IDs.
func (m *Model) tokenIDs(text string) []textproc.WordID {
	tokens := m.tok.Tokenize(text)
	ids := make([]textproc.WordID, 0, len(tokens))
	for _, t := range tokens {
		if id, ok := m.vocab.ID(t); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// InferTopics returns the sparse topic distribution of a text, exposing the
// oracle for diagnostics and custom integrations.
func (m *Model) InferTopics(text string) (topics []int, probs []float64) {
	v := m.inf.InferDoc(m.tokenIDs(text))
	topics = make([]int, v.Len())
	probs = make([]float64, v.Len())
	for i := range v.Topics {
		topics[i] = int(v.Topics[i])
		probs[i] = v.Probs[i]
	}
	return topics, probs
}
