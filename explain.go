package ksir

import (
	"fmt"

	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// Explanation breaks down why one post is in a result set: its marginal
// contribution to the representativeness score at the moment it was
// selected, split into the semantic (word-coverage) and influence
// (reference-coverage) components of the objective.
type Explanation struct {
	Post Post
	// Gain is the post's marginal contribution; the Gains of a result in
	// order sum to the result's Score.
	Gain float64
	// Semantic and Influence are Gain's two components.
	Semantic  float64
	Influence float64
	// NewWords counts distinct words this post covered that no earlier
	// post in the result had covered better.
	NewWords int
	// Topics maps topic index → that topic's share of Gain.
	Topics map[int]float64
}

// Explain recomputes a result's per-post contribution breakdown against the
// current window. Call it right after Query (before further Ingest/Flush
// calls change the window) with the same query you issued. Like Query it
// is safe to call concurrently with ingestion: it pins the last published
// snapshot for the whole computation.
func (s *Stream) Explain(res Result, q Query) ([]Explanation, error) {
	me := s.me.Load()
	x, err := queryVector(me.model, q)
	if err != nil {
		return nil, err
	}
	var contribs []score.Contribution
	me.engine.ReadSnapshot(func(win *stream.ActiveWindow, scorer *score.Scorer) {
		set := make([]*stream.Element, 0, len(res.Posts))
		for _, p := range res.Posts {
			e, ok := win.Get(stream.ElemID(p.ID))
			if !ok {
				err = fmt.Errorf("%w: post %d; explain before ingesting further", ErrNotActive, p.ID)
				return
			}
			set = append(set, e)
		}
		contribs = scorer.Explain(set, x)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Explanation, len(contribs))
	for i, c := range contribs {
		out[i] = Explanation{
			Post:      res.Posts[i],
			Gain:      c.Gain,
			Semantic:  c.Semantic,
			Influence: c.Influence,
			NewWords:  c.NewWords,
			Topics:    make(map[int]float64, len(c.TopicGains)),
		}
		for topic, g := range c.TopicGains {
			out[i].Topics[int(topic)] = g
		}
	}
	return out, nil
}
