package ksir

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// exportGob serializes a stream's full exported engine state — the same
// bytes a checkpoint would carry. Hibernation equivalence is exact: a
// stream driven across residency transitions must export byte-identical
// state (exact floats included) to a twin that never hibernated. The only
// masked fields are the two wall-clock maintenance timers, which measure
// this run's hardware, not the logical state.
func exportGob(t *testing.T, st *Stream) []byte {
	t.Helper()
	if st == nil {
		t.Fatal("exportGob: nil stream")
	}
	state := st.me.Load().engine.ExportState()
	state.Stats.UpdateTime, state.Stats.ReplayTime = 0, 0
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// copyStreamTree copies a hub data dir (stream subdirectories of flat
// files) — the crash-simulation snapshot the torn-hibernate tests recover
// from.
func copyStreamTree(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			copyStreamTree(t, sp, dp)
			continue
		}
		b, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func countResident(t *testing.T, h *Hub) int {
	t.Helper()
	n := 0
	for _, name := range h.List() {
		hs, err := h.Get(name)
		if err != nil {
			continue
		}
		if hs.Resident() {
			n++
		}
	}
	return n
}

// The tentpole contract: a stream hibernated and reactivated repeatedly
// mid-ingest ends in state byte-identical (gob, exact floats) to a twin
// that stayed resident throughout, and answers every query identically.
func TestHibernateReactivateEquivalence(t *testing.T) {
	m := trainTestModel(t)
	h := openTestHub(t, t.TempDir(), m, PersistOptions{})
	defer h.CloseAll()
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)

	posts := genPosts(300, 41)
	for i, p := range posts {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(p); err != nil {
			t.Fatal(err)
		}
		// Hibernate at irregular strides so transitions land mid-bucket
		// (pending posts outstanding) as well as on boundaries.
		if i%47 == 13 || i%101 == 60 {
			if err := hs.Hibernate(); err != nil {
				t.Fatalf("hibernate after post %d: %v", i, err)
			}
			if hs.Resident() {
				t.Fatalf("resident after hibernate (post %d)", i)
			}
		}
	}
	sameResults(t, "hibernated/reactivated",
		persistQueries(t, func(q Query) (Result, error) { return hs.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))

	hstats, mstats := hs.Stats(), mirror.Stats()
	if hstats.Active != mstats.Active || hstats.Now != mstats.Now ||
		hstats.Bucket != mstats.Bucket || hstats.Elements != mstats.Elements {
		t.Fatalf("stats diverge: %+v vs %+v", hstats, mstats)
	}
	if got, want := exportGob(t, hs.Stream()), exportGob(t, mirror); !bytes.Equal(got, want) {
		t.Fatalf("exported state diverges: %d vs %d bytes (and/or content)", len(got), len(want))
	}
	if r := hstats.Residency; r.Hibernations == 0 || r.Activations == 0 {
		t.Fatalf("residency counters did not move: %+v", r)
	}
}

// Hibernation bookkeeping: Stream() goes nil, Stats serves the captured
// counters without reactivating, a query transparently reactivates with a
// measured activation, and Hibernate is idempotent.
func TestHibernateStatsAndReactivation(t *testing.T) {
	m := trainTestModel(t)
	h := openTestHub(t, t.TempDir(), m, PersistOptions{})
	defer h.CloseAll()
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)
	for _, p := range genPosts(150, 42) {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	before := hs.Stats()
	if before.Residency.ResidentBytes <= 0 {
		t.Fatalf("resident stream reports %d resident bytes", before.Residency.ResidentBytes)
	}

	if err := hs.Hibernate(); err != nil {
		t.Fatal(err)
	}
	if err := hs.Hibernate(); err != nil {
		t.Fatalf("second hibernate not idempotent: %v", err)
	}
	if hs.Stream() != nil || hs.Resident() {
		t.Fatal("stream still resident after hibernate")
	}
	cold := hs.Stats()
	if cold.Elements != before.Elements || cold.Active != before.Active ||
		cold.Bucket != before.Bucket || cold.Now != before.Now {
		t.Fatalf("hibernated stats lost counters: %+v vs %+v", cold, before)
	}
	if cold.Residency.Resident || cold.Residency.ResidentBytes != 0 {
		t.Fatalf("hibernated residency: %+v", cold.Residency)
	}
	if cold.Residency.Hibernations != 1 {
		t.Fatalf("hibernations = %d, want 1 (idempotent repeat must not count)", cold.Residency.Hibernations)
	}
	if hs.Resident() {
		t.Fatal("Stats reactivated the stream")
	}

	// A query reactivates and answers exactly as the resident twin.
	want, err := mirror.Query(nil, Query{K: 5, Keywords: []string{"goal", "striker"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hs.Query(nil, Query{K: 5, Keywords: []string{"goal", "striker"}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "post-reactivation", []Result{got}, []Result{want})
	hot := hs.Stats()
	if !hot.Residency.Resident || hot.Residency.Activations != 1 {
		t.Fatalf("reactivation not accounted: %+v", hot.Residency)
	}
	if hot.Residency.LastActivation <= 0 {
		t.Fatalf("last activation latency %v", hot.Residency.LastActivation)
	}
}

// Hibernating is refused while it would lose in-memory-only state, and on
// hubs that have nowhere to put the stream.
func TestHibernateRefusals(t *testing.T) {
	m := trainTestModel(t)

	// In-memory hub: no durable state to reactivate from.
	mem := NewHub()
	defer mem.CloseAll()
	ms, err := mem.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Hibernate(); !errors.Is(err, ErrPersistDisabled) {
		t.Fatalf("in-memory hibernate: %v, want ErrPersistDisabled", err)
	}

	// Durable hub with a standing query: subscriptions live in memory only.
	h := openTestHub(t, t.TempDir(), m, PersistOptions{})
	defer h.CloseAll()
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := hs.Subscribe(context.Background(), Query{K: 3, Keywords: []string{"goal"}},
		persistOpts().Bucket, func(Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Hibernate(); !errors.Is(err, ErrStreamBusy) {
		t.Fatalf("hibernate with subscription: %v, want ErrStreamBusy", err)
	}
	if !hs.Resident() {
		t.Fatal("refused hibernate still released the stream")
	}
	hs.Unsubscribe(sub)
	if err := hs.Hibernate(); err != nil {
		t.Fatalf("hibernate after unsubscribe: %v", err)
	}
}

// Closing a hibernated stream must not reactivate it: the on-disk
// checkpoint is already current, so CloseAll leaves the bytes untouched
// and performs zero activations.
func TestCloseHibernatedDoesNotReactivate(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)
	posts := genPosts(120, 43)
	for _, p := range posts {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := hs.Hibernate(); err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(dir, "feed", "checkpoint")
	ckBefore, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CloseAll(); err != nil {
		t.Fatal(err)
	}
	ckAfter, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckBefore, ckAfter) {
		t.Fatal("CloseAll rewrote the checkpoint of a hibernated stream")
	}
	if acts := hs.Stats().Residency.Activations; acts != 0 {
		t.Fatalf("close performed %d activations, want 0", acts)
	}

	// The untouched state recovers exactly.
	h2 := openTestHub(t, dir, m, PersistOptions{})
	defer h2.CloseAll()
	hs2, err := h2.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "reopened after hibernated close",
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
}

// A crash torn mid-hibernation recovers exactly, whichever side of the
// checkpoint replace it fell on: (a) before the atomic rename (a stray
// checkpoint.tmp next to the pre-hibernate state), (b) after the rename
// but before the WAL truncation (new checkpoint + stale WAL records at or
// below its watermark), (c) after a completed hibernation.
func TestTornHibernateCrashRecovery(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{CheckpointEvery: 100000})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)
	posts := genPosts(150, 44)
	for _, p := range posts {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	pre := filepath.Join(t.TempDir(), "pre") // pre-hibernate: WAL only, no checkpoint
	if err := os.MkdirAll(pre, 0o755); err != nil {
		t.Fatal(err)
	}
	copyStreamTree(t, dir, pre)
	if err := hs.Hibernate(); err != nil {
		t.Fatal(err)
	}
	post := filepath.Join(t.TempDir(), "post") // post-hibernate: checkpoint, empty WAL
	if err := os.MkdirAll(post, 0o755); err != nil {
		t.Fatal(err)
	}
	copyStreamTree(t, dir, post)
	if err := h.CloseAll(); err != nil {
		t.Fatal(err)
	}

	layouts := map[string]func(t *testing.T) string{
		"tornBeforeRename": func(t *testing.T) string {
			d := filepath.Join(t.TempDir(), "d")
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			copyStreamTree(t, pre, d)
			// The torn write the crash left behind: garbage that must be
			// ignored, never loaded.
			if err := os.WriteFile(filepath.Join(d, "feed", "checkpoint.tmp"), []byte("torn"), 0o644); err != nil {
				t.Fatal(err)
			}
			return d
		},
		"tornBeforeWALReset": func(t *testing.T) string {
			d := filepath.Join(t.TempDir(), "d")
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			copyStreamTree(t, pre, d)
			// The new checkpoint landed; the WAL still holds every record
			// at or below its watermark — replay must skip them all.
			ck, err := os.ReadFile(filepath.Join(post, "feed", "checkpoint"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(d, "feed", "checkpoint"), ck, 0o644); err != nil {
				t.Fatal(err)
			}
			return d
		},
		"completed": func(t *testing.T) string {
			d := filepath.Join(t.TempDir(), "d")
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			copyStreamTree(t, post, d)
			return d
		},
	}
	for name, build := range layouts {
		t.Run(name, func(t *testing.T) {
			h2 := openTestHub(t, build(t), m, PersistOptions{})
			defer h2.CloseAll()
			hs2, err := h2.Get("feed")
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name,
				persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
				persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
			if got, want := exportGob(t, hs2.Stream()), exportGob(t, mirror); !bytes.Equal(got, want) {
				t.Fatal("recovered state not byte-identical to the never-hibernated twin")
			}
		})
	}
}

// The residency budget: EnforceResidency hibernates the coldest streams
// down to the configured count, touching a cold stream reactivates it,
// and admission control evicts to make room for the newly hot stream.
func TestResidencyBudget(t *testing.T) {
	m := trainTestModel(t)
	h := openTestHub(t, t.TempDir(), m, PersistOptions{
		MaxResidentStreams: 2,
		ResidencySweep:     time.Hour, // deterministic: the test sweeps by hand
	})
	defer h.CloseAll()

	const streams = 6
	posts := genPosts(40, 45)
	for i := 0; i < streams; i++ {
		hs, err := h.Create(fmt.Sprintf("s%d", i), m, persistOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range posts {
			if err := hs.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(time.Millisecond) // strictly ordered last-touch clocks
	}
	n, err := h.EnforceResidency()
	if err != nil {
		t.Fatal(err)
	}
	if n != streams-2 {
		t.Fatalf("EnforceResidency hibernated %d, want %d", n, streams-2)
	}
	if got := countResident(t, h); got != 2 {
		t.Fatalf("%d resident after enforcement, want 2", got)
	}
	// The two warmest (most recently created) streams survived.
	for _, name := range []string{"s4", "s5"} {
		hs, _ := h.Get(name)
		if !hs.Resident() {
			t.Fatalf("%s was evicted despite being warmest", name)
		}
	}

	// Touching the coldest stream reactivates it; admission evicts one of
	// the residents (asynchronously) to stay at the budget.
	cold, _ := h.Get("s0")
	if _, err := cold.Query(nil, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	if !cold.Resident() {
		t.Fatal("query did not reactivate s0")
	}
	deadline := time.Now().Add(5 * time.Second)
	for countResident(t, h) > 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := countResident(t, h); got > 2 {
		t.Fatalf("%d resident after admission, want ≤ 2", got)
	}
}

// Cold recovery: opening a data dir under a residency budget registers
// every stream hibernated — no state is loaded until first touch — and a
// touched stream answers exactly as an eagerly recovered twin.
func TestColdRecoveryUnderBudget(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	mirror := mirrorStream(t, m)
	posts := genPosts(130, 46)
	for i := 0; i < 4; i++ {
		hs, err := h.Create(fmt.Sprintf("s%d", i), m, persistOpts())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range posts {
			if err := hs.Add(p); err != nil {
				t.Fatal(err)
			}
			if i == 2 {
				if err := mirror.Add(p); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := h.CloseAll(); err != nil {
		t.Fatal(err)
	}

	h2 := openTestHub(t, dir, m, PersistOptions{MaxResidentStreams: 2, ResidencySweep: time.Hour})
	defer h2.CloseAll()
	if got := len(h2.List()); got != 4 {
		t.Fatalf("cold recovery registered %d streams, want 4", got)
	}
	if got := countResident(t, h2); got != 0 {
		t.Fatalf("%d resident right after cold recovery, want 0", got)
	}
	// Listing and stats must not churn the hot tier.
	for _, name := range h2.List() {
		hs, _ := h2.Get(name)
		_ = hs.Stats()
	}
	if got := countResident(t, h2); got != 0 {
		t.Fatalf("stats sweep activated %d streams", got)
	}

	hs2, err := h2.Get("s2")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "cold-recovered s2",
		persistQueries(t, func(q Query) (Result, error) { return hs2.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
	if got := countResident(t, h2); got != 1 {
		t.Fatalf("%d resident after touching one stream, want 1", got)
	}
}

// The opt-in commit window coalesces concurrent producers into fewer
// commit batches while leaving every result untouched: op-for-op
// equivalence with a stream that never waited.
func TestCommitWindowEquivalence(t *testing.T) {
	m := trainTestModel(t)
	h := openTestHub(t, t.TempDir(), m, PersistOptions{CommitWindow: 2 * time.Millisecond})
	defer h.CloseAll()
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorStream(t, m)

	// Concurrent producers, disjoint IDs, one shared timestamp: acceptance
	// is interleaving-independent, so the mirror can apply the union in ID
	// order and still be the exact reference.
	const producers, each = 4, 40
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				post := Post{ID: int64(p*1000 + i + 1), Time: 60, Text: "goal striker derby league"}
				if err := hs.Add(post); err != nil {
					errs <- fmt.Errorf("producer %d post %d: %w", p, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for p := 0; p < producers; p++ {
		for i := 0; i < each; i++ {
			if err := mirror.Add(Post{ID: int64(p*1000 + i + 1), Time: 60, Text: "goal striker derby league"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := hs.Flush(180); err != nil {
		t.Fatal(err)
	}
	if err := mirror.Flush(180); err != nil {
		t.Fatal(err)
	}
	sameResults(t, "commit window",
		persistQueries(t, func(q Query) (Result, error) { return hs.Query(nil, q) }),
		persistQueries(t, func(q Query) (Result, error) { return mirror.Query(nil, q) }))
	ps := hs.Stats().Pipeline
	if ps.Ops != producers*each+1 {
		t.Fatalf("ops = %d, want %d", ps.Ops, producers*each+1)
	}
	if ps.MeanBatchSize() <= 1 {
		t.Errorf("commit window achieved no coalescing: %+v", ps)
	}
}
