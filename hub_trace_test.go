package ksir

import (
	"context"
	"testing"
	"time"

	"github.com/social-streams/ksir/internal/trace"
)

// startedOp begins a certainly head-sampled parentless op on a private
// recorder, so pipeline span assertions never touch the global recorder.
func startedOp(t *testing.T, rec *trace.Recorder, name string) *trace.Op {
	t.Helper()
	rec.SetSampleRate(1)
	rec.SetSlowThreshold(0)
	op := rec.Start(name, "", trace.SpanContext{})
	if op == nil {
		t.Fatal("recorder refused to start an op")
	}
	return op
}

// spanIn returns the first span with the given name, failing if absent.
func spanIn(t *testing.T, tr *trace.Trace, name string) trace.Span {
	t.Helper()
	for _, s := range tr.Spans {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("trace has no span %q (got %d spans)", name, len(tr.Spans))
	return trace.Span{}
}

// The pipeline tracing contract: a write op carrying a trace op through
// AddContext comes back with the full commit breakdown — queue wait,
// commit batch, engine apply, WAL append, fsync and future completion —
// correctly parented and with non-zero durations, and the trace is
// attributed to the stream.
func TestAddContextRecordsPipelineSpans(t *testing.T) {
	m := trainTestModel(t)
	h, err := OpenHub(t.TempDir(), m, PersistOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer h.CloseAll()
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.NewRecorder(8)
	op := startedOp(t, rec, "test.add")
	ctx := trace.ContextWith(context.Background(), op)
	if err := hs.AddContext(ctx, Post{ID: 1, Time: 30, Text: "late goal wins the derby"}); err != nil {
		t.Fatal(err)
	}
	op.End()

	traces := rec.Snapshot(trace.Filter{})
	if len(traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Stream != "feed" {
		t.Fatalf("trace stream = %q, want feed", tr.Stream)
	}
	root := tr.Spans[0]
	qw := spanIn(t, tr, "queue.wait")
	cb := spanIn(t, tr, "commit.batch")
	apply := spanIn(t, tr, "engine.apply")
	wal := spanIn(t, tr, "wal.append")
	fsync := spanIn(t, tr, "wal.fsync")
	fut := spanIn(t, tr, "future.completion")
	for _, s := range []trace.Span{qw, cb, apply, wal, fsync, fut} {
		if s.Duration <= 0 {
			t.Errorf("span %s duration = %v, want > 0", s.Name, s.Duration)
		}
	}
	if qw.Parent != root.SpanID || cb.Parent != root.SpanID || fut.Parent != root.SpanID {
		t.Error("queue.wait/commit.batch/future.completion not parented to the op root")
	}
	if apply.Parent != cb.SpanID || wal.Parent != cb.SpanID || fsync.Parent != cb.SpanID {
		t.Error("engine.apply/wal.append/wal.fsync not parented to commit.batch")
	}
}

// An untraced write must not record anything: the nil-op path through the
// pipeline is the production default and has to stay inert.
func TestUntracedWriteRecordsNoSpans(t *testing.T) {
	m := trainTestModel(t)
	h := NewHub()
	defer h.CloseAll()
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(8)
	rec.SetSampleRate(1)
	if err := hs.Add(Post{ID: 1, Time: 30, Text: "late goal wins the derby"}); err != nil {
		t.Fatal(err)
	}
	if err := hs.FlushContext(context.Background(), 120); err != nil {
		t.Fatal(err)
	}
	if n := rec.Len(); n != 0 {
		t.Fatalf("untraced writes recorded %d traces", n)
	}
}

// A reactivating op's trace carries the stream.activate child under its
// commit batch.
func TestReactivationRecordsActivateSpan(t *testing.T) {
	m := trainTestModel(t)
	h, err := OpenHub(t.TempDir(), m, PersistOptions{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer h.CloseAll()
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Add(Post{ID: 1, Time: 30, Text: "late goal wins the derby"}); err != nil {
		t.Fatal(err)
	}
	if err := hs.Flush(120); err != nil {
		t.Fatal(err)
	}
	if err := hs.Hibernate(); err != nil {
		t.Fatal(err)
	}

	rec := trace.NewRecorder(8)
	op := startedOp(t, rec, "test.query")
	ctx := trace.ContextWith(context.Background(), op)
	if _, err := hs.Query(ctx, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	op.End()

	tr := rec.Snapshot(trace.Filter{})[0]
	act := spanIn(t, tr, "stream.activate")
	cb := spanIn(t, tr, "commit.batch")
	if act.Parent != cb.SpanID {
		t.Error("stream.activate not parented to commit.batch")
	}
	if act.Duration <= 0 {
		t.Errorf("stream.activate duration = %v, want > 0", act.Duration)
	}
	// The activation breakdown: loading the checkpoint and rebuilding the
	// engine are phases of every reactivation (the WAL tail is empty here —
	// Hibernate checkpoints — so wal.replay may legitimately be absent).
	for _, name := range []string{"checkpoint.load", "state.restore"} {
		s := spanIn(t, tr, name)
		if s.Parent != act.SpanID {
			t.Errorf("%s not parented to stream.activate", name)
		}
		if s.Duration <= 0 {
			t.Errorf("%s duration = %v, want > 0", name, s.Duration)
		}
	}
	spanIn(t, tr, "snapshot.pin")
	spanIn(t, tr, "query.descend")
}

// A crash-recovered activation shows the full phase breakdown: checkpoint
// load, state restore, WAL tail replay, and the back-buffer
// materialization the replayed buckets forced — all children of
// stream.activate.
func TestActivationPhaseSpansWithWALTail(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	h := openTestHub(t, dir, m, PersistOptions{})
	hs, err := h.Create("feed", m, persistOpts())
	if err != nil {
		t.Fatal(err)
	}
	posts := genPosts(60, 57)
	for _, p := range posts[:30] {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := hs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, p := range posts[30:] {
		if err := hs.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	// Crash snapshot: checkpoint plus a WAL tail spanning several buckets,
	// so reactivation replays through the engine and the replay's first
	// bucket pays the lazy back-buffer build.
	crash := t.TempDir()
	copyStreamTree(t, dir, crash)
	if err := h.CloseAll(); err != nil {
		t.Fatal(err)
	}

	// A residency budget makes recovery cold: the traced query below is
	// the first touch and pays (and records) the whole activation.
	h2 := openTestHub(t, crash, m, PersistOptions{MaxResidentStreams: 4, ResidencySweep: time.Hour})
	defer h2.CloseAll()
	hs2, err := h2.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	if hs2.Resident() {
		t.Fatal("crash-recovered stream resident before first touch")
	}
	rec := trace.NewRecorder(8)
	op := startedOp(t, rec, "test.query")
	ctx := trace.ContextWith(context.Background(), op)
	if _, err := hs2.Query(ctx, Query{K: 3, Keywords: []string{"goal"}}); err != nil {
		t.Fatal(err)
	}
	op.End()

	tr := rec.Snapshot(trace.Filter{})[0]
	act := spanIn(t, tr, "stream.activate")
	for _, name := range []string{"checkpoint.load", "state.restore", "wal.replay", "backbuffer.materialize"} {
		s := spanIn(t, tr, name)
		if s.Parent != act.SpanID {
			t.Errorf("%s not parented to stream.activate", name)
		}
		if s.Duration <= 0 {
			t.Errorf("%s duration = %v, want > 0", name, s.Duration)
		}
		if s.Start.Before(act.Start) || s.Start.Add(s.Duration).After(act.Start.Add(act.Duration)) {
			t.Errorf("%s [%v +%v] outside stream.activate [%v +%v]",
				name, s.Start, s.Duration, act.Start, act.Duration)
		}
	}
}
