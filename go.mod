module github.com/social-streams/ksir

go 1.22
