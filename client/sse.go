package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	apiv1 "github.com/social-streams/ksir/api/v1"
)

// Event is one Server-Sent Event from a standing query: a refresh of the
// k most representative posts as of Bucket, or the final "closed"
// notification when the stream is closed out of the hub.
type Event struct {
	// Type is the SSE event name: "refresh", or "closed" when the stream
	// was closed server-side (the event stream ends after it and
	// Subscribe returns nil).
	Type string
	// Bucket is the ingested-bucket sequence number the refresh observed
	// (the SSE id field). With OnlyOnChange, consecutive Buckets can jump:
	// suppressed refreshes leave no event.
	Bucket int64
	// Result is the refreshed query answer; Result.Bucket equals Bucket.
	Result apiv1.QueryResponse
}

// ErrStopSubscription is the sentinel a Subscribe handler returns to end
// the subscription cleanly (Subscribe then returns nil).
var ErrStopSubscription = errors.New("ksir client: stop subscription")

// Subscribe registers a standing query on the server and streams its
// refreshes to fn until ctx is cancelled (returns ctx.Err()), fn returns
// an error (returned as-is, except ErrStopSubscription which maps to
// nil), the stream is closed server-side (fn sees a final "closed" event
// and Subscribe returns nil), or the connection breaks.
//
// Subscribe blocks; run it in its own goroutine when consuming
// alongside other work.
func (s *Stream) Subscribe(ctx context.Context, req SubscribeRequest, fn func(Event) error) error {
	if fn == nil {
		return fmt.Errorf("ksir client: nil handler")
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		s.c.base+s.path+"/subscribe?"+req.query().Encode(), nil)
	if err != nil {
		return fmt.Errorf("ksir client: %w", err)
	}
	httpReq.Header.Set("Accept", "text/event-stream")
	resp, err := s.c.hc.Do(httpReq)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("ksir client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}

	// Minimal SSE parser: accumulate event/id/data fields until a blank
	// line dispatches the event. Comment lines (": ping") are ignored.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var typ, id string
	var data []string
	dispatch := func() error {
		defer func() { typ, id, data = "", "", nil }()
		if len(data) == 0 {
			return nil
		}
		ev := Event{Type: typ}
		ev.Bucket, _ = strconv.ParseInt(id, 10, 64)
		if err := json.Unmarshal([]byte(strings.Join(data, "\n")), &ev.Result); err != nil {
			return fmt.Errorf("ksir client: bad event payload: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, ErrStopSubscription) {
				return errStopped
			}
			return err
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				if err == errStopped {
					return nil
				}
				return err
			}
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "event:"):
			typ = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ksir client: reading event stream: %w", err)
	}
	return nil
}

// errStopped is the internal marker for a handler-requested stop.
var errStopped = errors.New("stopped")
