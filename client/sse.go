package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/connector/backoff"
)

// Event is one Server-Sent Event from a standing query: a refresh of the
// k most representative posts as of Bucket, or the final "closed"
// notification when the stream is closed out of the hub.
type Event struct {
	// Type is the SSE event name: "refresh", or "closed" when the stream
	// was closed server-side (the event stream ends after it and
	// Subscribe returns nil).
	Type string
	// Bucket is the ingested-bucket sequence number the refresh observed
	// (the SSE id field). With OnlyOnChange, consecutive Buckets can jump:
	// suppressed refreshes leave no event.
	Bucket int64
	// Result is the refreshed query answer; Result.Bucket equals Bucket.
	Result apiv1.QueryResponse
}

// ErrStopSubscription is the sentinel a Subscribe handler returns to end
// the subscription cleanly (Subscribe then returns nil).
var ErrStopSubscription = errors.New("ksir client: stop subscription")

// Subscribe registers a standing query on the server and streams its
// refreshes to fn until ctx is cancelled (returns ctx.Err()), fn returns
// an error (returned as-is, except ErrStopSubscription which maps to
// nil), the stream is closed server-side (fn sees a final "closed" event
// and Subscribe returns nil), or the connection breaks.
//
// Subscribe makes exactly one connection attempt and returns when it
// ends; use SubscribeResume for a consumer that must survive transport
// failures. Subscribe blocks; run it in its own goroutine when consuming
// alongside other work.
func (s *Stream) Subscribe(ctx context.Context, req SubscribeRequest, fn func(Event) error) error {
	if fn == nil {
		return fmt.Errorf("ksir client: nil handler")
	}
	return s.subscribeOnce(ctx, req, -1, fn)
}

// SubscribeResume is Subscribe with automatic reconnect and resume: when
// the event stream breaks — mid-stream disconnect, transport error,
// server restart, 5xx — it backs off per pol and resubscribes with the
// SSE Last-Event-ID header set to the bucket seq of the last refresh it
// delivered. The server replays the current answer immediately when
// buckets were ingested while the consumer was away (a catch-up refresh)
// and suppresses buckets at or below the presented cursor, so across any
// number of reconnects fn observes each bucket seq at most once.
//
// The attempt counter resets whenever a connection delivers at least one
// event, so an occasional drop retries at pol's initial delay while a
// hard outage walks the full exponential curve.
//
// SubscribeResume returns when ctx is cancelled (ctx.Err()), fn returns
// an error (returned as-is; ErrStopSubscription maps to nil), the stream
// is closed server-side (fn sees the final "closed" event, returns nil),
// or the server rejects the subscription outright with a non-retryable
// *APIError (4xx — e.g. a bad query or an unknown stream). It never
// returns on transport errors alone: bound it with ctx.
func (s *Stream) SubscribeResume(ctx context.Context, req SubscribeRequest, pol backoff.Policy, fn func(Event) error) error {
	if fn == nil {
		return fmt.Errorf("ksir client: nil handler")
	}
	lastID := int64(-1)
	attempt := 0
	for {
		var progressed, terminal bool
		err := s.subscribeOnce(ctx, req, lastID, func(ev Event) error {
			progressed = true
			switch ev.Type {
			case "closed":
				// The stream is gone server-side; reconnecting would only
				// yield unknown-stream errors.
				terminal = true
			case "refresh":
				if ev.Bucket <= lastID {
					// The server already filters resumed duplicates; keep
					// the contract client-side too (older servers).
					return nil
				}
			}
			err := fn(ev)
			if ev.Type == "refresh" && ev.Bucket > lastID {
				lastID = ev.Bucket
			}
			if err != nil {
				terminal = true // handler decisions are permanent
			}
			return err
		})
		if terminal || ctx.Err() != nil {
			return err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status < 500 {
			return err // the server refused the subscription; retrying cannot help
		}
		// Anything else — a clean EOF from a dropped connection (err ==
		// nil), a transport error, a 5xx — is the unreliable half of the
		// system: back off and resubscribe from lastID.
		if progressed {
			attempt = 0
		}
		if serr := pol.Sleep(ctx, attempt); serr != nil {
			return serr
		}
		attempt++
	}
}

// subscribeOnce makes one subscription connection and consumes it to the
// end. lastID ≥ 0 resumes: it is sent as the SSE Last-Event-ID header and
// the server replays/suppresses accordingly. A clean end of stream
// returns nil — the caller decides whether that is final (Subscribe) or a
// signal to reconnect (SubscribeResume).
func (s *Stream) subscribeOnce(ctx context.Context, req SubscribeRequest, lastID int64, fn func(Event) error) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		s.c.base+s.path+"/subscribe?"+req.query().Encode(), nil)
	if err != nil {
		return fmt.Errorf("ksir client: %w", err)
	}
	httpReq.Header.Set("Accept", "text/event-stream")
	if lastID >= 0 {
		httpReq.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := s.c.hc.Do(httpReq)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("ksir client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}

	// Minimal SSE parser: accumulate event/id/data fields until a blank
	// line dispatches the event. Comment lines (": ping") are ignored.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var typ, id string
	var data []string
	dispatch := func() error {
		defer func() { typ, id, data = "", "", nil }()
		if len(data) == 0 {
			return nil
		}
		ev := Event{Type: typ}
		ev.Bucket, _ = strconv.ParseInt(id, 10, 64)
		if err := json.Unmarshal([]byte(strings.Join(data, "\n")), &ev.Result); err != nil {
			return fmt.Errorf("ksir client: bad event payload: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, ErrStopSubscription) {
				return errStopped
			}
			return err
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				if err == errStopped {
					return nil
				}
				return err
			}
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "event:"):
			typ = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ksir client: reading event stream: %w", err)
	}
	return nil
}

// errStopped is the internal marker for a handler-requested stop.
var errStopped = errors.New("stopped")
