package client

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/internal/persist"
	"github.com/social-streams/ksir/internal/server"
)

// durableServer boots a durable hub-backed server over dir and returns an
// SDK client for it. The hub is returned too so crash tests can abandon it
// without the clean close.
func durableServer(t *testing.T, dir string, m *ksir.Model, po ksir.PersistOptions) (*Client, *ksir.Hub) {
	t.Helper()
	po.Fsync = ksir.FsyncNever
	hub, err := ksir.OpenHub(dir, m, po)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.NewHub(hub, m,
		ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { hub.CloseAll() })
	return New(srv.URL), hub
}

// loadLogicalCheckpoint reads a stream's on-disk checkpoint and strips the
// two kinds of state that vary run to run independently of hibernation:
// the wall-clock maintenance timers (they measure the hardware, not the
// history) and the arrival order of same-timestamp posts inside the window
// queue, which concurrent producers racing over HTTP make nondeterministic
// even on a server that never hibernates (the pipeline equivalence test
// compares query answers for the same reason). The queue segment is
// re-sorted by ID; scores, counters and the rest stay exact.
func loadLogicalCheckpoint(t *testing.T, dir string) *persist.Checkpoint {
	t.Helper()
	ck, err := persist.LoadCheckpoint(filepath.Join(dir, "s"))
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no checkpoint on disk")
	}
	ck.Core.Stats.UpdateTime, ck.Core.Stats.ReplayTime = 0, 0
	queue := ck.Core.Window.Elems[:ck.Core.Window.WindowLen]
	sort.Slice(queue, func(i, j int) bool { return queue[i].Elem.ID < queue[j].Elem.ID })
	return ck
}

// TestHibernationChurnSDK is the residency contract seen from the wire,
// run under -race: concurrent SDK producers and queriers race a hibernate
// hammer that keeps flipping the stream hot↔cold. Every per-op result must
// be exactly what a quiet stream would have returned, queries must
// transparently reactivate, and the final durable state must be identical
// (gob checkpoint, exact floats) to a twin server that never hibernated.
func TestHibernationChurnSDK(t *testing.T) {
	ctx := context.Background()
	m := testClientModel(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	churned, _ := durableServer(t, dirA, m, ksir.PersistOptions{})
	quiet, _ := durableServer(t, dirB, m, ksir.PersistOptions{})
	const producers = 6

	for _, c := range []*Client{churned, quiet} {
		if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "s", WindowSec: 3600, BucketSec: 60}); err != nil {
			t.Fatal(err)
		}
	}

	// Churned twin: producers, queriers and the hibernate hammer all at
	// once. producerOps asserts every per-op result itself (acceptance is
	// interleaving-independent by construction), so any answer distorted by
	// a residency transition fails loudly.
	var wgProd, wgBg sync.WaitGroup
	var stop atomic.Bool
	var hibernations atomic.Int64
	errs := make(chan error, producers+3)
	for p := 0; p < producers; p++ {
		wgProd.Add(1)
		go func(p int) {
			defer wgProd.Done()
			if err := producerOps(ctx, churned.Stream("s"), p); err != nil {
				errs <- err
			}
		}(p)
	}
	for q := 0; q < 2; q++ {
		wgBg.Add(1)
		go func() {
			defer wgBg.Done()
			for !stop.Load() {
				// No bucket has been published during the churn (all posts
				// share one timestamp and nothing flushes), so the only two
				// legal answers are an empty result or not_active — either
				// way the query must cross a reactivation without error.
				_, err := churned.Stream("s").Query(ctx, apiv1.QueryRequest{K: 3, Keywords: []string{"goal"}})
				if err != nil && !errors.Is(err, ksir.ErrNotActive) {
					errs <- fmt.Errorf("churn query: %v", err)
					return
				}
			}
		}()
	}
	wgBg.Add(1)
	go func() {
		defer wgBg.Done()
		for !stop.Load() {
			info, err := churned.Stream("s").Hibernate(ctx)
			if err != nil {
				errs <- fmt.Errorf("churn hibernate: %v", err)
				return
			}
			if info.State != apiv1.StateHibernated {
				errs <- fmt.Errorf("hibernate returned state %q", info.State)
				return
			}
			hibernations.Add(1)
		}
	}()
	// Producers finish their fixed op sequences; then the hammer and the
	// queriers are told to stand down.
	wgProd.Wait()
	stop.Store(true)
	wgBg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hibernations.Load() == 0 {
		t.Fatal("the hammer never hibernated — churn did not exercise residency transitions")
	}

	// Quiet twin: the same operations, never hibernated.
	for p := 0; p < producers; p++ {
		if err := producerOps(ctx, quiet.Stream("s"), p); err != nil {
			t.Errorf("quiet twin: %v", err)
		}
	}

	// Same flush, then bit-identical query answers across the wire.
	for _, c := range []*Client{churned, quiet} {
		if _, err := c.Stream("s").Flush(ctx, 200); err != nil {
			t.Fatal(err)
		}
	}
	for _, req := range []apiv1.QueryRequest{
		{K: 10, Keywords: []string{"goal", "striker"}},
		{K: 5, Keywords: []string{"dunk"}, Algorithm: "mtts"},
		{K: 7, Keywords: []string{"league", "playoffs"}, Algorithm: "topk"},
	} {
		rc, err := churned.Stream("s").Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := quiet.Stream("s").Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rc, rq) {
			t.Errorf("query %+v diverges:\n churned %+v\n   quiet %+v", req, rc, rq)
		}
	}

	// Exact-state finale: hibernating the churned twin and checkpointing
	// the quiet one must leave logically identical checkpoints — same
	// window, same ranked-list tuples with bit-identical scores, same
	// pending buffer, same WAL watermark.
	if _, err := churned.Stream("s").Hibernate(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := quiet.Stream("s").Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	ckA, ckB := loadLogicalCheckpoint(t, dirA), loadLogicalCheckpoint(t, dirB)
	if !reflect.DeepEqual(ckA, ckB) {
		t.Fatalf("final checkpoints diverge after hibernation churn:\n churned %+v\n   quiet %+v", ckA, ckB)
	}

	// The hibernated stream stays listed, marked as such, with its
	// transition counters on the wire.
	list, err := churned.ListStreams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].State != apiv1.StateHibernated {
		t.Fatalf("hibernated stream not listed as such: %+v", list)
	}
	if r := list[0].Residency; r == nil || r.Hibernations == 0 || r.Activations == 0 || r.ResidentBytes != 0 {
		t.Fatalf("residency counters missing on the wire: %+v", list[0].Residency)
	}
}

// TestHibernateSDKErrors checks the wire mapping of the two refusals.
func TestHibernateSDKErrors(t *testing.T) {
	ctx := context.Background()
	m := testClientModel(t)

	// In-memory server: 409 persist_disabled.
	mem := pipelineServer(t, m, false)
	if _, err := mem.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "s"}); err != nil {
		t.Fatal(err)
	}
	_, err := mem.Stream("s").Hibernate(ctx)
	if !errors.Is(err, ksir.ErrPersistDisabled) {
		t.Fatalf("in-memory hibernate: %v, want ErrPersistDisabled", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != apiv1.CodePersistDisabled || apiErr.Status != 409 {
		t.Fatalf("wire shape: %+v", apiErr)
	}

	// Durable server with a standing query: 409 stream_busy.
	c, hub := durableServer(t, t.TempDir(), m, ksir.PersistOptions{})
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "s"}); err != nil {
		t.Fatal(err)
	}
	hs, err := hub.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := hs.Subscribe(context.Background(), ksir.Query{K: 3, Keywords: []string{"goal"}},
		time.Minute, func(ksir.Result) {})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Stream("s").Hibernate(ctx)
	if !errors.Is(err, ksir.ErrStreamBusy) {
		t.Fatalf("busy hibernate: %v, want ErrStreamBusy", err)
	}
	if !errors.As(err, &apiErr) || apiErr.Code != apiv1.CodeStreamBusy || apiErr.Status != 409 {
		t.Fatalf("wire shape: %+v", apiErr)
	}
	hs.Unsubscribe(sub)
	if _, err := c.Stream("s").Hibernate(ctx); err != nil {
		t.Fatalf("hibernate after unsubscribe: %v", err)
	}
}

// TestHibernateCrashRecoverySDK: a server crash right after (or torn
// during) a hibernation loses nothing — a new server over the same data
// dir, including one that finds a stray checkpoint.tmp from a torn
// replace, serves the stream exactly as before.
func TestHibernateCrashRecoverySDK(t *testing.T) {
	ctx := context.Background()
	m := testClientModel(t)
	dir := t.TempDir()
	c, hub := durableServer(t, dir, m, ksir.PersistOptions{})
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "s", WindowSec: 3600, BucketSec: 60}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := producerOps(ctx, c.Stream("s"), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Stream("s").Flush(ctx, 200); err != nil {
		t.Fatal(err)
	}
	req := apiv1.QueryRequest{K: 10, Keywords: []string{"goal", "striker"}}
	want, err := c.Stream("s").Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream("s").Hibernate(ctx); err != nil {
		t.Fatal(err)
	}
	// Crash: the hub is abandoned (no CloseAll), and a torn checkpoint
	// replace left garbage behind.
	_ = hub // cleanup still closes it at test end; the new hub reads the dir now
	if err := os.WriteFile(filepath.Join(dir, "s", "checkpoint.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, _ := durableServer(t, dir, m, ksir.PersistOptions{})
	got, err := c2.Stream("s").Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-crash query diverges:\n got %+v\nwant %+v", got, want)
	}
}
