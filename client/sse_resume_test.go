package client

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/connector/backoff"
	"github.com/social-streams/ksir/internal/server"
)

// killProxy is a TCP proxy the resume tests put between the SDK and the
// server so they can sever live subscriptions (killLive) and hold the
// consumer disconnected (setBlocked) while the stream keeps ingesting —
// the failure geometry a real consumer sees when a load balancer restarts
// underneath it.
type killProxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	blocked bool
	dials   int
}

func newKillProxy(t *testing.T, targetURL string) *killProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killProxy{
		ln:     ln,
		target: strings.TrimPrefix(targetURL, "http://"),
		conns:  make(map[net.Conn]struct{}),
	}
	go p.accept()
	t.Cleanup(func() {
		ln.Close()
		p.killLive()
	})
	return p
}

func (p *killProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *killProxy) accept() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.blocked {
			p.mu.Unlock()
			down.Close() // consumer sees an immediate reset and backs off
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			p.mu.Unlock()
			down.Close()
			continue
		}
		p.dials++
		p.conns[down] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		go proxyHalf(up, down)
		go proxyHalf(down, up)
	}
}

func proxyHalf(dst, src net.Conn) {
	io.Copy(dst, src)
	dst.Close()
	src.Close()
}

// setBlocked controls whether new connections get through; while blocked
// they are closed on accept.
func (p *killProxy) setBlocked(b bool) {
	p.mu.Lock()
	p.blocked = b
	p.mu.Unlock()
}

// killLive severs every proxied connection currently alive.
func (p *killProxy) killLive() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

func (p *killProxy) dialCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials
}

// TestSubscribeResumeAcrossDisconnects drops the connection under a live
// subscription and asserts the contract of SubscribeResume end to end:
// the consumer resumes at the right bucket seq — a catch-up refresh for
// buckets ingested while it was disconnected, no duplicate refresh for
// buckets it already saw — across multiple kills.
func TestSubscribeResumeAcrossDisconnects(t *testing.T) {
	ctx := context.Background()
	m := testClientModel(t)
	hub := ksir.NewHub()
	srv := httptest.NewServer(server.NewHub(hub, m,
		ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}))
	t.Cleanup(srv.Close)
	proxy := newKillProxy(t, srv.URL)

	// Control plane goes straight to the server; only the subscription
	// rides through the proxy, so kills hit exactly the event stream.
	ctl := New(srv.URL).Stream("res")
	if _, err := New(srv.URL).CreateStream(ctx, apiv1.CreateStreamRequest{Name: "res"}); err != nil {
		t.Fatal(err)
	}

	events := make(chan Event, 16)
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan error, 1)
	pol := backoff.Policy{Initial: time.Millisecond, Max: 20 * time.Millisecond, Exact: true}
	go func() {
		done <- New(proxy.URL()).Stream("res").SubscribeResume(subCtx,
			SubscribeRequest{K: 1, Keywords: []string{"goal"}}, pol,
			func(ev Event) error {
				events <- ev
				return nil
			})
	}()
	waitSubscribers(t, ctl, 1)

	next := func(want int64) Event {
		t.Helper()
		select {
		case ev := <-events:
			if ev.Type != "refresh" || ev.Bucket != want || ev.Result.Bucket != want {
				t.Fatalf("event = {type %q bucket %d result.bucket %d}, want refresh of bucket %d",
					ev.Type, ev.Bucket, ev.Result.Bucket, want)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for bucket %d", want)
		}
		panic("unreachable")
	}
	quiet := func(during time.Duration) {
		t.Helper()
		select {
		case ev := <-events:
			t.Fatalf("unexpected event: type %q bucket %d (duplicate refresh after resume?)", ev.Type, ev.Bucket)
		case <-time.After(during):
		}
	}
	ingestBucket := func(id, at int64) {
		t.Helper()
		if _, err := ctl.Add(ctx, apiv1.Post{ID: id, Time: at, Text: "goal striker league"}); err != nil {
			t.Fatal(err)
		}
		if _, err := ctl.Flush(ctx, at+30); err != nil {
			t.Fatal(err)
		}
	}

	// Bucket 1 arrives on the live connection.
	ingestBucket(1, 30)
	ev := next(1)
	if len(ev.Result.Posts) == 0 || ev.Result.Posts[0].ID != 1 {
		t.Fatalf("bucket 1 result = %+v", ev.Result)
	}

	// Kill the connection and ingest while the consumer is down: on
	// reconnect the server must replay the current answer immediately as
	// a catch-up refresh (no bucket boundary fires after reconnect, so
	// nothing else could deliver it).
	proxy.setBlocked(true)
	proxy.killLive()
	ingestBucket(2, 90)
	proxy.setBlocked(false)
	next(2)

	// Kill again with nothing ingested: resuming with Last-Event-ID=2
	// must not replay bucket 2 — that is the duplicate-refresh guard.
	proxy.setBlocked(true)
	proxy.killLive()
	proxy.setBlocked(false)
	waitSubscribers(t, ctl, 1) // resubscribed before we listen for silence
	quiet(300 * time.Millisecond)

	// The resumed subscription is live: the next bucket arrives once.
	ingestBucket(3, 150)
	next(3)
	quiet(200 * time.Millisecond)

	if d := proxy.dialCount(); d < 3 {
		t.Errorf("proxy dials = %d, want ≥ 3 (initial + two resumes)", d)
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("SubscribeResume = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubscribeResume did not return after cancel")
	}
}

// TestSubscribeResumePermanentErrors asserts SubscribeResume gives up
// without retrying on errors reconnecting cannot fix: a 4xx from the
// server and a handler-returned error.
func TestSubscribeResumePermanentErrors(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "perm"}); err != nil {
		t.Fatal(err)
	}
	st := c.Stream("perm")
	pol := backoff.Policy{Initial: time.Millisecond, Exact: true}

	// Unanswerable query: the pre-flight 400 must come straight back.
	err := st.SubscribeResume(ctx, SubscribeRequest{K: 1, Keywords: []string{"zzztypo"}}, pol,
		func(Event) error { return nil })
	if !errors.Is(err, ksir.ErrBadQuery) {
		t.Errorf("bad-query err = %v, want ErrBadQuery", err)
	}

	// A handler error is permanent even though the connection was
	// healthy; ErrStopSubscription still maps to a clean nil. Both need a
	// live refresh to hand the handler, so subscribe first, ingest after.
	boom := errors.New("boom")
	at := int64(30)
	for _, tc := range []struct {
		name    string
		ret     error // what the handler returns
		want    error // what SubscribeResume must return (nil for clean stop)
		wantNil bool
	}{
		{name: "handler error", ret: boom, want: boom},
		{name: "handler stop", ret: ErrStopSubscription, wantNil: true},
	} {
		done := make(chan error, 1)
		go func() {
			done <- st.SubscribeResume(ctx, SubscribeRequest{K: 1, Keywords: []string{"goal"}}, pol,
				func(Event) error { return tc.ret })
		}()
		waitSubscribers(t, st, 1)
		if _, err := st.Add(ctx, apiv1.Post{ID: at, Time: at, Text: "goal striker"}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Flush(ctx, at+30); err != nil {
			t.Fatal(err)
		}
		at += 60
		select {
		case err := <-done:
			if tc.wantNil && err != nil {
				t.Errorf("%s: SubscribeResume = %v, want nil", tc.name, err)
			}
			if !tc.wantNil && !errors.Is(err, tc.want) {
				t.Errorf("%s: SubscribeResume = %v, want %v", tc.name, err, tc.want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: SubscribeResume did not return", tc.name)
		}
		waitSubscribers(t, st, 0) // the dead subscription unregisters before the next round
	}
}

// waitSubscribers polls the control-plane stats until the server reports
// n live subscriptions (the standing query is registered server-side).
func waitSubscribers(t *testing.T, st *Stream, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err := st.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if stats.Subscriptions == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriptions = %d, want %d", stats.Subscriptions, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
