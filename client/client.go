// Package client is the Go SDK for the k-SIR service's /v1 HTTP API
// (internal/server; wire contract in api/v1). It covers the full surface
// — stream lifecycle, ingest, flush, query, stats, and standing queries
// over Server-Sent Events — and maps wire errors back onto the library's
// typed taxonomy, so
//
//	_, err := c.Stream("feed").Flush(ctx, past)
//	errors.Is(err, ksir.ErrOutOfOrder) // true, across the wire
//
// works exactly as it would in-process.
//
//	c := client.New("http://localhost:8080")
//	info, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "feed"})
//	feed := c.Stream("feed")
//	feed.Add(ctx, apiv1.Post{ID: 1, Time: 60, Text: "late goal wins the derby"})
//	feed.Flush(ctx, 120)
//	res, err := feed.Query(ctx, apiv1.QueryRequest{K: 5, Keywords: []string{"goal"}})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/internal/trace"
)

// Client speaks the /v1 API of one k-SIR server. It is safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, middlewares). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New creates a client for the server at baseURL (e.g.
// "http://localhost:8080"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithTraceparent returns ctx carrying the given W3C traceparent header
// value (e.g. one received from an upstream caller). SDK calls made with
// the returned context forward it to the server, so the server-side trace
// recorded at /debug/traces joins the caller's trace id. A malformed
// header leaves ctx unchanged.
func WithTraceparent(ctx context.Context, header string) context.Context {
	sc, ok := trace.ParseTraceparent(header)
	if !ok {
		return ctx
	}
	return trace.ContextWithRemote(ctx, sc)
}

// APIError is a non-2xx response decoded from the server's structured
// envelope. Unwrap returns the matching ksir sentinel (if the code maps
// to one), so errors.Is(err, ksir.ErrUnknownStream) etc. work across the
// wire.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the wire error code (api/v1 Code* constants).
	Code string
	// Message is the server's human-readable detail.
	Message string
	// Accepted, when non-nil, is the durably ingested prefix length of a
	// partially applied batch (see Stream.Add).
	Accepted *int
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("ksir client: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// Unwrap surfaces the library sentinel behind the wire code (nil for
// transport-level codes like bad_request/internal).
func (e *APIError) Unwrap() error { return apiv1.Sentinel(e.Code) }

// CreateStream registers a new stream on the server. Zero-valued request
// fields inherit the server's defaults; set req.Lambda to express λ
// explicitly (including λ=0, the paper's pure-influence setting).
func (c *Client) CreateStream(ctx context.Context, req apiv1.CreateStreamRequest) (apiv1.StreamInfo, error) {
	var info apiv1.StreamInfo
	err := c.do(ctx, http.MethodPost, "/v1/streams", req, &info)
	return info, err
}

// ListStreams returns every registered stream with its counters.
func (c *Client) ListStreams(ctx context.Context) ([]apiv1.StreamInfo, error) {
	var resp apiv1.ListStreamsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/streams", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Streams, nil
}

// CloseStream unregisters a stream; subsequent operations on it fail with
// ksir.ErrUnknownStream (routes) or ksir.ErrStreamClosed (live handles).
func (c *Client) CloseStream(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/streams/"+url.PathEscape(name), nil, nil)
}

// Stream returns a handle for the named stream. No request is made; the
// name is validated by the first call through the handle.
func (c *Client) Stream(name string) *Stream {
	return &Stream{c: c, name: name, path: "/v1/streams/" + url.PathEscape(name)}
}

// Stream is a client-side handle to one named stream.
type Stream struct {
	c    *Client
	name string
	path string
}

// Name returns the stream name this handle addresses.
func (s *Stream) Name() string { return s.name }

// Add ingests posts (one request; the server applies them in order and
// stops at the first rejected post). It returns how many posts were
// accepted: len(posts) on success, and on a partial-batch rejection the
// accepted prefix length — the rejected post is posts[accepted]; fix or
// drop it and resend posts[accepted:], not the whole batch. Accepted
// posts stay in the stream and become visible at their bucket boundary.
func (s *Stream) Add(ctx context.Context, posts ...apiv1.Post) (accepted int, err error) {
	var resp apiv1.AcceptedResponse
	if err := s.c.do(ctx, http.MethodPost, s.path+"/posts", posts, &resp); err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Accepted != nil {
			return *apiErr.Accepted, err
		}
		return 0, err
	}
	return resp.Accepted, nil
}

// Flush advances the stream clock to now, ingesting everything buffered.
func (s *Stream) Flush(ctx context.Context, now int64) (apiv1.FlushResponse, error) {
	var resp apiv1.FlushResponse
	err := s.c.do(ctx, http.MethodPost, s.path+"/flush", apiv1.FlushRequest{Now: now}, &resp)
	return resp, err
}

// Query answers a k-SIR query against the last published bucket; the
// response's Bucket field reports which one.
func (s *Stream) Query(ctx context.Context, req apiv1.QueryRequest) (apiv1.QueryResponse, error) {
	var resp apiv1.QueryResponse
	err := s.c.do(ctx, http.MethodPost, s.path+"/query", req, &resp)
	return resp, err
}

// Stats returns the stream's configuration and counters. On a durable
// server (started with -data-dir) Info.Persist carries the WAL and
// checkpoint counters; it is nil otherwise. Info.Pipeline reports the
// stream's writer pipeline: live queue depth, mean commit-batch size and
// fsyncs per operation (how much group commit is amortizing durability
// under the current producer concurrency).
func (s *Stream) Stats(ctx context.Context) (apiv1.StreamInfo, error) {
	var info apiv1.StreamInfo
	err := s.c.do(ctx, http.MethodGet, s.path+"/stats", nil, &info)
	return info, err
}

// Checkpoint forces an immediate durability checkpoint: the stream's
// full state is serialized to disk and its write-ahead log truncated.
// It fails with ksir.ErrPersistDisabled (409 persist_disabled) when the
// server runs without a data directory. The returned info reflects the
// stream just after the checkpoint.
func (s *Stream) Checkpoint(ctx context.Context) (apiv1.StreamInfo, error) {
	var info apiv1.StreamInfo
	err := s.c.do(ctx, http.MethodPost, s.path+"/checkpoint", nil, &info)
	return info, err
}

// Hibernate checkpoints the stream and releases its in-memory state on
// the server; the stream stays registered (it keeps appearing in
// ListStreams with state "hibernated") and the next post, query or
// subscription transparently reactivates it. It fails with
// ksir.ErrPersistDisabled (409 persist_disabled) without a data directory
// and ksir.ErrStreamBusy (409 stream_busy) while standing queries are
// registered. The returned info reflects the hibernated stream.
func (s *Stream) Hibernate(ctx context.Context) (apiv1.StreamInfo, error) {
	var info apiv1.StreamInfo
	err := s.c.do(ctx, http.MethodPost, s.path+"/hibernate", nil, &info)
	return info, err
}

// SubscribeRequest configures a standing query delivered over SSE.
type SubscribeRequest struct {
	// K is the result size (required).
	K int
	// Keywords are the query keywords (required).
	Keywords []string
	// Every is the refresh interval in stream time; zero means the
	// stream's bucket interval.
	Every time.Duration
	// OnlyOnChange suppresses refreshes whose result set is unchanged.
	OnlyOnChange bool
	// Algorithm is mttd (default) | mtts | topk.
	Algorithm string
	// Epsilon is the approximation knob ε (0 means the default).
	Epsilon float64
}

func (r SubscribeRequest) query() url.Values {
	qs := url.Values{}
	qs.Set("k", strconv.Itoa(r.K))
	qs.Set("keywords", strings.Join(r.Keywords, ","))
	if r.Every > 0 {
		qs.Set("every", r.Every.String())
	}
	if r.OnlyOnChange {
		qs.Set("only_changed", "true")
	}
	if r.Algorithm != "" {
		qs.Set("algorithm", r.Algorithm)
	}
	if r.Epsilon > 0 {
		qs.Set("epsilon", strconv.FormatFloat(r.Epsilon, 'g', -1, 64))
	}
	return qs
}

// do sends one JSON request and decodes the response (out may be nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("ksir client: encoding request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("ksir client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's trace: a span context on ctx (either a local
	// op or one injected with WithTraceparent) rides out as the W3C
	// traceparent header, so the server's recorded trace joins the
	// caller's trace id.
	if sc, ok := trace.SpanContextFromContext(ctx); ok {
		req.Header.Set(trace.Header, trace.FormatTraceparent(sc))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("ksir client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("ksir client: decoding response: %w", err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *APIError, tolerating
// non-envelope bodies (proxies, panics).
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env apiv1.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Err.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Err.Code, Message: env.Err.Message, Accepted: env.Accepted}
	}
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		msg = http.StatusText(resp.StatusCode)
	}
	return &APIError{Status: resp.StatusCode, Code: apiv1.CodeInternal, Message: msg}
}
