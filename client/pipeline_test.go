package client

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/internal/server"
)

// pipelineServer boots a hub-backed server (pipelined or serialized
// writer) over the shared test model and returns an SDK client.
func pipelineServer(t *testing.T, m *ksir.Model, serialized bool) *Client {
	t.Helper()
	var hub *ksir.Hub
	if serialized {
		hub = ksir.NewHub(ksir.WithSerializedWriter())
	} else {
		hub = ksir.NewHub()
	}
	srv := httptest.NewServer(server.NewHub(hub, m,
		ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { hub.CloseAll() })
	return New(srv.URL)
}

// producerOps drives one producer's deterministic op sequence through the
// SDK and asserts each per-op result. All posts share one timestamp, so
// acceptance is independent of cross-producer interleaving: a post is
// accepted iff its ID is new, and every rejection below is a
// self-duplicate whose outcome no other producer can change.
func producerOps(ctx context.Context, s *Stream, p int) error {
	base := int64(p*1000 + 1)
	// Singles: n accepted posts.
	for i := int64(0); i < 8; i++ {
		if n, err := s.Add(ctx, apiv1.Post{ID: base + i, Time: 100, Text: "goal striker league"}); err != nil || n != 1 {
			return fmt.Errorf("producer %d add %d: n=%d err=%v", p, i, n, err)
		}
	}
	// Self-duplicate: must map back to ksir.ErrBadPost across the wire.
	if _, err := s.Add(ctx, apiv1.Post{ID: base, Time: 100, Text: "goal"}); !errors.Is(err, ksir.ErrBadPost) {
		return fmt.Errorf("producer %d duplicate: err=%v, want ErrBadPost", p, err)
	}
	// Batch with an internal self-duplicate: exact accepted prefix.
	batch := []apiv1.Post{
		{ID: base + 100, Time: 100, Text: "dunk rebound playoffs"},
		{ID: base + 1, Time: 100, Text: "goal"}, // already ingested above
		{ID: base + 101, Time: 100, Text: "never examined"},
	}
	if n, err := s.Add(ctx, batch...); !errors.Is(err, ksir.ErrBadPost) || n != 1 {
		return fmt.Errorf("producer %d batch: n=%d err=%v, want n=1 ErrBadPost", p, n, err)
	}
	return nil
}

// TestPipelineSDKEquivalence is the writer-pipeline contract seen from the
// wire (run under -race): concurrent producers pushing through the SDK —
// whose requests coalesce into commit batches server-side — observe
// per-op results identical to the serialized writer path, and the final
// stream state matches a serialized run of the same operations bit for
// bit.
func TestPipelineSDKEquivalence(t *testing.T) {
	ctx := context.Background()
	m := testClientModel(t)
	piped := pipelineServer(t, m, false)
	serial := pipelineServer(t, m, true)
	const producers = 8

	for _, c := range []*Client{piped, serial} {
		if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "s", WindowSec: 3600, BucketSec: 60}); err != nil {
			t.Fatal(err)
		}
	}

	// Pipelined: all producers concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := producerOps(ctx, piped.Stream("s"), p); err != nil {
				errs <- err
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Serialized reference: the same operations, one after another.
	for p := 0; p < producers; p++ {
		if err := producerOps(ctx, serial.Stream("s"), p); err != nil {
			t.Errorf("serialized reference: %v", err)
		}
	}

	// Same flush, then bit-identical query answers.
	for _, c := range []*Client{piped, serial} {
		if _, err := c.Stream("s").Flush(ctx, 200); err != nil {
			t.Fatal(err)
		}
	}
	for _, req := range []apiv1.QueryRequest{
		{K: 10, Keywords: []string{"goal", "striker"}},
		{K: 5, Keywords: []string{"dunk"}, Algorithm: "mtts"},
		{K: 7, Keywords: []string{"league", "playoffs"}, Algorithm: "topk"},
	} {
		rp, err := piped.Stream("s").Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := serial.Stream("s").Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rp, rs) {
			t.Errorf("query %+v diverges:\n pipelined %+v\nserialized %+v", req, rp, rs)
		}
	}

	// The stats block surfaces the pipeline: every op committed, and the
	// serialized twin reports batches == ops (no coalescing by
	// construction).
	ip, err := piped.Stream("s").Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Pipeline == nil || ip.Pipeline.Ops == 0 || ip.Pipeline.Batches == 0 {
		t.Fatalf("pipelined stats missing pipeline block: %+v", ip.Pipeline)
	}
	if ip.Pipeline.MeanBatchSize < 1 {
		t.Errorf("mean batch size %v < 1", ip.Pipeline.MeanBatchSize)
	}
	is, err := serial.Stream("s").Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if is.Pipeline == nil || is.Pipeline.Ops != is.Pipeline.Batches {
		t.Errorf("serialized writer coalesced: %+v", is.Pipeline)
	}
}
