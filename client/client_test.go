package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ksir "github.com/social-streams/ksir"
	apiv1 "github.com/social-streams/ksir/api/v1"
	"github.com/social-streams/ksir/internal/server"
)

// testClientModel trains the tiny two-topic model the client suite runs
// against.
func testClientModel(t *testing.T) *ksir.Model {
	t.Helper()
	soccer := []string{"goal", "striker", "keeper", "league", "derby", "penalty"}
	basket := []string{"dunk", "rebound", "playoffs", "court", "buzzer", "triple"}
	rng := rand.New(rand.NewSource(1))
	var corpus []string
	for i := 0; i < 200; i++ {
		words := soccer
		if i%2 == 1 {
			words = basket
		}
		var b []string
		for j := 0; j < 6; j++ {
			b = append(b, words[rng.Intn(len(words))])
		}
		corpus = append(corpus, strings.Join(b, " "))
	}
	m, err := ksir.TrainModel(corpus, ksir.WithTopics(2), ksir.WithIterations(40),
		ksir.WithSeed(1), ksir.WithPriors(0.5, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newServer boots a hub-backed in-process server over a tiny two-topic
// model and returns an SDK client pointed at it.
func newServer(t *testing.T) *Client {
	t.Helper()
	m := testClientModel(t)
	hub := ksir.NewHub()
	srv := httptest.NewServer(server.NewHub(hub, m,
		ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}))
	t.Cleanup(srv.Close)
	return New(srv.URL)
}

func TestClientEndToEnd(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)

	info, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "feed"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "feed" || info.BucketSec != 60 {
		t.Errorf("create info = %+v", info)
	}

	feed := c.Stream("feed")
	if _, err := feed.Add(ctx,
		apiv1.Post{ID: 1, Time: 10, Text: "late goal wins the derby"},
		apiv1.Post{ID: 2, Time: 20, Text: "what a dunk in the playoffs"},
		apiv1.Post{ID: 3, Time: 30, Text: "keeper saves the penalty", Refs: []int64{1}},
	); err != nil {
		t.Fatal(err)
	}
	fr, err := feed.Flush(ctx, 60)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Active != 3 || fr.Bucket == 0 {
		t.Errorf("flush = %+v", fr)
	}

	res, err := feed.Query(ctx, apiv1.QueryRequest{K: 2, Keywords: []string{"goal", "league"}, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) == 0 || res.Score <= 0 || res.Bucket != fr.Bucket {
		t.Errorf("query = %+v", res)
	}
	if len(res.Explain) != len(res.Posts) {
		t.Errorf("explanations: %d vs %d posts", len(res.Explain), len(res.Posts))
	}

	stats, err := feed.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Active != 3 || stats.Elements != 3 {
		t.Errorf("stats = %+v", stats)
	}
	streams, err := c.ListStreams(ctx)
	if err != nil || len(streams) != 1 {
		t.Fatalf("list = %v %v", streams, err)
	}
	if err := c.CloseStream(ctx, "feed"); err != nil {
		t.Fatal(err)
	}
	if _, err := feed.Stats(ctx); !errors.Is(err, ksir.ErrUnknownStream) {
		t.Errorf("stats after close err = %v", err)
	}
}

// The typed error taxonomy survives the wire: SDK callers use errors.Is
// against the ksir sentinels exactly as in-process callers do.
func TestClientErrorMapping(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "s"}); err != nil {
		t.Fatal(err)
	}

	_, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "s"})
	if !errors.Is(err, ksir.ErrStreamExists) {
		t.Errorf("duplicate create err = %v, want ErrStreamExists", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 409 || apiErr.Code != apiv1.CodeStreamExists {
		t.Errorf("APIError = %+v", apiErr)
	}

	if _, err := c.Stream("nope").Query(ctx, apiv1.QueryRequest{K: 1, Keywords: []string{"goal"}}); !errors.Is(err, ksir.ErrUnknownStream) {
		t.Errorf("unknown stream err = %v", err)
	}

	s := c.Stream("s")
	if _, err := s.Add(ctx, apiv1.Post{ID: 1, Time: 100, Text: "goal"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(ctx, apiv1.Post{ID: 2, Time: 50, Text: "goal"}); !errors.Is(err, ksir.ErrOutOfOrder) {
		t.Errorf("out-of-order err = %v, want ErrOutOfOrder", err)
	}
	if _, err := s.Flush(ctx, 10); !errors.Is(err, ksir.ErrOutOfOrder) {
		t.Errorf("backwards flush err = %v, want ErrOutOfOrder", err)
	}
	if _, err := s.Query(ctx, apiv1.QueryRequest{K: 0}); !errors.Is(err, ksir.ErrBadQuery) {
		t.Errorf("k=0 err = %v, want ErrBadQuery", err)
	}
	if _, err := s.Add(ctx, apiv1.Post{ID: 3, Time: 0, Text: "goal"}); !errors.Is(err, ksir.ErrBadPost) {
		t.Errorf("zero-time err = %v, want ErrBadPost", err)
	}
}

// A partially applied batch reports its durable prefix: the error
// envelope carries accepted, and the SDK returns it alongside the typed
// error.
func TestClientPartialBatchAccepted(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	p := c.Stream("p")
	n, err := p.Add(ctx,
		apiv1.Post{ID: 1, Time: 10, Text: "goal striker"},
		apiv1.Post{ID: 2, Time: 20, Text: "dunk rebound"},
		apiv1.Post{ID: 3, Time: 5, Text: "late"}, // out of order: rejected
		apiv1.Post{ID: 4, Time: 30, Text: "never examined"},
	)
	if !errors.Is(err, ksir.ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
	if n != 2 {
		t.Errorf("accepted = %d, want 2", n)
	}
	fr, err := p.Flush(ctx, 60)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Active != 2 {
		t.Errorf("active = %d, want the durable prefix 2", fr.Active)
	}
}

// The satellite contract for Subscribe/OnlyOnChange over the wire: every
// SSE event carries the bucket sequence it was computed at (id field ==
// body bucket), and refreshes whose result set is unchanged are
// suppressed, so the received sequence skips the quiet buckets.
func TestClientSSESubscribeOnlyOnChange(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "live"}); err != nil {
		t.Fatal(err)
	}
	live := c.Stream("live")

	events := make(chan Event, 16)
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- live.Subscribe(subCtx, SubscribeRequest{
			K: 1, Keywords: []string{"goal"}, OnlyOnChange: true,
		}, func(ev Event) error {
			events <- ev
			return nil
		})
	}()
	// Wait until the standing query is registered server-side before
	// ingesting, so no refresh can be missed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := live.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Subscriptions == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Bucket seq 1: first matching post → refresh fires.
	// Bucket seq 2: nothing new → suppressed by only_changed.
	// Bucket seq 3: better post → refresh fires.
	// Bucket seq 4: nothing new → suppressed.
	if _, err := live.Add(ctx, apiv1.Post{ID: 1, Time: 30, Text: "goal striker league"}); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Flush(ctx, 120); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Add(ctx, apiv1.Post{ID: 2, Time: 150, Text: "goal goal striker league derby"}); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Flush(ctx, 240); err != nil {
		t.Fatal(err)
	}

	var got []Event
	for len(got) < 2 {
		select {
		case ev := <-events:
			got = append(got, ev)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d events: %+v", len(got), got)
		}
	}
	// No third event: the suppressed buckets must stay silent.
	select {
	case ev := <-events:
		t.Fatalf("unexpected extra event: %+v", ev)
	case <-time.After(200 * time.Millisecond):
	}

	for i, ev := range got {
		if ev.Type != "refresh" {
			t.Errorf("event %d type = %q", i, ev.Type)
		}
		if ev.Bucket == 0 || ev.Bucket != ev.Result.Bucket {
			t.Errorf("event %d bucket mismatch: id=%d body=%d", i, ev.Bucket, ev.Result.Bucket)
		}
	}
	// The two refreshes observed buckets 1 and 3: seq 2 and 4 were
	// unchanged and suppressed.
	if got[0].Bucket != 1 || got[1].Bucket != 3 {
		t.Errorf("event buckets = [%d %d], want [1 3]", got[0].Bucket, got[1].Bucket)
	}
	if got[0].Result.Posts[0].ID != 1 || got[1].Result.Posts[0].ID != 2 {
		t.Errorf("event posts = [%d %d], want [1 2]",
			got[0].Result.Posts[0].ID, got[1].Result.Posts[0].ID)
	}

	// Cancelling the context ends Subscribe with ctx.Err().
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Subscribe returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Subscribe did not return after cancel")
	}
}

// A Subscribe handler can end the stream cleanly with ErrStopSubscription.
func TestClientSSEHandlerStop(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "once"}); err != nil {
		t.Fatal(err)
	}
	once := c.Stream("once")
	done := make(chan error, 1)
	go func() {
		done <- once.Subscribe(ctx, SubscribeRequest{K: 1, Keywords: []string{"goal"}},
			func(Event) error { return ErrStopSubscription })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := once.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Subscriptions == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := once.Add(ctx, apiv1.Post{ID: 1, Time: 30, Text: "goal striker"}); err != nil {
		t.Fatal(err)
	}
	if _, err := once.Flush(ctx, 120); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Subscribe = %v, want nil after ErrStopSubscription", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Subscribe did not stop")
	}
}

// A standing query that can never produce a result (keywords outside the
// model vocabulary) is rejected up front with a typed error instead of a
// 200 event stream that only ever heartbeats.
func TestClientSSERejectsUnanswerableQuery(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	err := c.Stream("v").Subscribe(ctx, SubscribeRequest{K: 1, Keywords: []string{"zzztypo"}},
		func(Event) error {
			t.Error("handler called for unanswerable query")
			return nil
		})
	if !errors.Is(err, ksir.ErrBadQuery) {
		t.Errorf("err = %v, want ErrBadQuery", err)
	}
}

// Closing a stream out of the hub ends live SSE subscriptions with a
// final "closed" event instead of leaving them heartbeating forever.
func TestClientSSEStreamClosed(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "gone"}); err != nil {
		t.Fatal(err)
	}
	gone := c.Stream("gone")
	events := make(chan Event, 4)
	done := make(chan error, 1)
	go func() {
		done <- gone.Subscribe(ctx, SubscribeRequest{K: 1, Keywords: []string{"goal"}},
			func(ev Event) error {
				events <- ev
				return nil
			})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := gone.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Subscriptions == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.CloseStream(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Subscribe = %v, want nil after server-side close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Subscribe still blocked after the stream was closed")
	}
	select {
	case ev := <-events:
		if ev.Type != "closed" {
			t.Errorf("final event type = %q, want closed", ev.Type)
		}
	default:
		t.Error("no closed event delivered")
	}
}

// The acceptance bar: concurrent multi-stream ingest and query through
// the SDK, under -race — the paper's "thousands of users" shape driven
// end to end over the wire.
func TestClientConcurrentMultiStream(t *testing.T) {
	ctx := context.Background()
	c := newServer(t)
	const streams = 3
	for i := 0; i < streams; i++ {
		if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, streams*4)
	for i := 0; i < streams; i++ {
		st := c.Stream(fmt.Sprintf("s%d", i))
		// Two writers per stream: the server-side handles serialize them.
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(st *Stream, w int) {
				defer wg.Done()
				for j := 0; j < 40; j++ {
					text := "goal striker league"
					if j%2 == 1 {
						text = "dunk rebound playoffs"
					}
					id := int64(w*1000 + j + 1)
					_, err := st.Add(ctx, apiv1.Post{ID: id, Time: int64(1 + j*10), Text: text})
					// Interleaved writers race the stream clock; a typed
					// out-of-order rejection is expected, anything else is
					// a bug.
					if err != nil && !errors.Is(err, ksir.ErrOutOfOrder) {
						errs <- fmt.Errorf("%s writer %d: %v", st.Name(), w, err)
						return
					}
					if j%10 == 9 {
						if _, err := st.Flush(ctx, int64(1+j*10)); err != nil && !errors.Is(err, ksir.ErrOutOfOrder) {
							errs <- fmt.Errorf("%s flush: %v", st.Name(), err)
							return
						}
					}
				}
			}(st, w)
		}
		// Two readers per stream: buckets never move backwards.
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(st *Stream) {
				defer wg.Done()
				var last int64 = -1
				for j := 0; j < 30; j++ {
					res, err := st.Query(ctx, apiv1.QueryRequest{K: 3, Keywords: []string{"goal"}})
					if err != nil {
						errs <- fmt.Errorf("%s query: %v", st.Name(), err)
						return
					}
					if res.Bucket < last {
						errs <- fmt.Errorf("%s bucket went backwards %d -> %d", st.Name(), last, res.Bucket)
						return
					}
					last = res.Bucket
				}
			}(st)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every stream answers with data after a final flush.
	for i := 0; i < streams; i++ {
		st := c.Stream(fmt.Sprintf("s%d", i))
		if _, err := st.Flush(ctx, 500); err != nil && !errors.Is(err, ksir.ErrOutOfOrder) {
			t.Fatal(err)
		}
		info, err := st.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.Active == 0 {
			t.Errorf("stream s%d empty after concurrent ingest", i)
		}
	}
}

// newDurableServer boots a durable (data-dir backed) server and returns
// the SDK client, the directory, and the model for reboots.
func newDurableServer(t *testing.T, dir string) *Client {
	t.Helper()
	m := testClientModel(t)
	hub, err := ksir.OpenHub(dir, m, ksir.PersistOptions{Fsync: ksir.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.NewHub(hub, m,
		ksir.Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}))
	t.Cleanup(func() { srv.Close(); hub.CloseAll() })
	return New(srv.URL)
}

// Checkpoint through the SDK: counters in the returned info, typed 409 on
// an in-memory server, and the persist block visible through Stats.
func TestClientCheckpoint(t *testing.T) {
	ctx := context.Background()
	c := newDurableServer(t, t.TempDir())
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "feed"}); err != nil {
		t.Fatal(err)
	}
	feed := c.Stream("feed")
	for i := 0; i < 8; i++ {
		if _, err := feed.Add(ctx, apiv1.Post{ID: int64(i + 1), Time: int64(70 * (i + 1)), Text: "goal keeper derby"}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := feed.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Persist == nil || stats.Persist.WALSeq != 8 {
		t.Fatalf("pre-checkpoint persist stats = %+v, want wal_seq 8", stats.Persist)
	}
	info, err := feed.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Persist == nil || info.Persist.Checkpoints != 1 || info.Persist.WALBytes != 0 {
		t.Errorf("checkpoint info = %+v, want 1 checkpoint, empty WAL", info.Persist)
	}

	// In-memory server: the SDK maps 409/persist_disabled back onto the
	// library sentinel.
	mem := newServer(t)
	if _, err := mem.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "feed"}); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Stream("feed").Checkpoint(ctx); !errors.Is(err, ksir.ErrPersistDisabled) {
		t.Errorf("in-memory checkpoint error = %v, want ksir.ErrPersistDisabled", err)
	}
	if st, err := mem.Stream("feed").Stats(ctx); err != nil || st.Persist != nil {
		t.Errorf("in-memory stats carry a persist block: %+v, %v", st.Persist, err)
	}
}

// The SDK survives a server restart over the same data directory: posts
// ingested before the "crash" answer identically after.
func TestClientRecoveryAcrossRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c := newDurableServer(t, dir)
	if _, err := c.CreateStream(ctx, apiv1.CreateStreamRequest{Name: "feed"}); err != nil {
		t.Fatal(err)
	}
	feed := c.Stream("feed")
	for i := 0; i < 20; i++ {
		if _, err := feed.Add(ctx, apiv1.Post{ID: int64(i + 1), Time: int64(45 * (i + 1)), Text: "dunk rebound buzzer"}); err != nil {
			t.Fatal(err)
		}
	}
	q := apiv1.QueryRequest{K: 4, Keywords: []string{"dunk", "rebound"}}
	before, err := feed.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	c2 := newDurableServer(t, dir) // crash + reboot (first hub never closed)
	after, err := c2.Stream("feed").Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", after.Posts) != fmt.Sprintf("%+v", before.Posts) || after.Bucket != before.Bucket {
		t.Errorf("post-restart answer diverges:\n got %+v\nwant %+v", after, before)
	}
}
