package ksir

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/social-streams/ksir/internal/textproc"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := trainTestModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Topics() != m.Topics() || loaded.VocabSize() != m.VocabSize() {
		t.Fatalf("dimensions changed: %d/%d vs %d/%d",
			loaded.Topics(), loaded.VocabSize(), m.Topics(), m.VocabSize())
	}
	// Inference must be identical (same Phi, same seed).
	for _, text := range []string{"goal striker league", "dunk rebound court", "goal dunk"} {
		t1, p1 := m.InferTopics(text)
		t2, p2 := loaded.InferTopics(text)
		if len(t1) != len(t2) {
			t.Fatalf("inference diverged on %q: %v vs %v", text, t1, t2)
		}
		for i := range t1 {
			if t1[i] != t2[i] || p1[i] != p2[i] {
				t.Fatalf("inference diverged on %q: %v/%v vs %v/%v", text, t1, p1, t2, p2)
			}
		}
	}
	// Top words preserved.
	w1, _ := m.TopWords(0, 3)
	w2, _ := loaded.TopWords(0, 3)
	if strings.Join(w1, " ") != strings.Join(w2, " ") {
		t.Errorf("top words changed: %v vs %v", w1, w2)
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	m := trainTestModel(t)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Topics() != m.Topics() {
		t.Error("round trip via file failed")
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadModel(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// A model file from another format version fails with the typed sentinel
// (the same one the durability subsystem uses), so callers branch with
// errors.Is instead of matching message strings.
func TestLoadModelVersionMismatchIsTyped(t *testing.T) {
	m := trainTestModel(t)
	var buf bytes.Buffer
	// Re-encode the wire struct with a future version.
	mf := modelFile{Version: modelFileVersion + 1, Z: m.tm.Z, V: m.tm.V,
		Phi: m.tm.Phi, PTopic: m.tm.PTopic, Seed: m.seed}
	for i := 0; i < m.vocab.Size(); i++ {
		id := textproc.WordID(i)
		mf.Words = append(mf.Words, m.vocab.Word(id))
		mf.Freq = append(mf.Freq, m.vocab.Freq(id))
		mf.DocFreq = append(mf.DocFreq, m.vocab.DocFreq(id))
	}
	if err := gob.NewEncoder(&buf).Encode(mf); err != nil {
		t.Fatal(err)
	}
	_, err := LoadModel(&buf)
	if !errors.Is(err, ErrModelVersion) {
		t.Errorf("future-version load = %v, want ErrModelVersion", err)
	}
}

func TestLoadedModelServesQueries(t *testing.T) {
	m := trainTestModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(loaded, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		text := "goal striker league"
		if i%2 == 1 {
			text = "dunk rebound playoffs"
		}
		if err := st.Add(Post{ID: int64(i + 1), Time: int64(1 + i*10), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(300); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(context.Background(), Query{K: 3, Keywords: []string{"goal"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Posts) == 0 {
		t.Error("loaded model cannot serve queries")
	}
}
