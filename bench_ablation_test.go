// Ablation benchmarks for the design choices DESIGN.md §5 calls out: what
// the ranked-list early termination, the lazy MTTD buffer, and the skip
// list actually buy, measured against the naive alternative on the same
// state and objective.
package ksir_test

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/social-streams/ksir/internal/baselines"
	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/rankedlist"
	"github.com/social-streams/ksir/internal/score"
	"github.com/social-streams/ksir/internal/stream"
)

// BenchmarkAblationEarlyTermination contrasts MTTS (ranked lists + UB
// cutoff) with the same sieve logic minus the index (SieveStreaming over a
// full scan). The ns/op gap is what the ranked lists buy; the reported
// eval-ratio metric is the Figure 10 story.
func BenchmarkAblationEarlyTermination(b *testing.B) {
	microSetup(b)
	b.Run("MTTS-with-index", func(b *testing.B) {
		var evaluated, active int64
		for i := 0; i < b.N; i++ {
			q := microQueries[i%len(microQueries)]
			res, err := microEngine.Query(core.Query{K: 10, X: q.X, Epsilon: 0.1, Algorithm: core.MTTS})
			if err != nil {
				b.Fatal(err)
			}
			evaluated += int64(res.Evaluated)
			active += int64(res.ActiveAtQuery)
		}
		if active > 0 {
			b.ReportMetric(float64(evaluated)/float64(active), "eval-ratio")
		}
	})
	b.Run("Sieve-full-scan", func(b *testing.B) {
		var evaluated, active int64
		for i := 0; i < b.N; i++ {
			q := microQueries[i%len(microQueries)]
			actives := activesOf(microEngine)
			res := baselines.SieveStreaming(microEngine.Scorer(), actives, q.X, 10, 0.1)
			evaluated += int64(res.Evaluated)
			active += int64(len(actives))
		}
		if active > 0 {
			b.ReportMetric(float64(evaluated)/float64(active), "eval-ratio")
		}
	})
}

// BenchmarkAblationLazyBuffer contrasts MTTD's lazy-heap evaluation with a
// plain greedy that recomputes every candidate's marginal gain each round —
// the classic CELF-vs-greedy gap, here on the k-SIR objective.
func BenchmarkAblationLazyBuffer(b *testing.B) {
	microSetup(b)
	b.Run("MTTD-lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := microQueries[i%len(microQueries)]
			if _, err := microEngine.Query(core.Query{K: 10, X: q.X, Epsilon: 0.1, Algorithm: core.MTTD}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy-recompute-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := microQueries[i%len(microQueries)]
			actives := activesOf(microEngine)
			set := score.NewCandidateSet(microEngine.Scorer(), q.X)
			for set.Len() < 10 {
				var best *stream.Element
				var bestGain float64
				for _, e := range actives {
					if set.Contains(e.ID) {
						continue
					}
					if g := set.MarginalGain(e); g > bestGain {
						best, bestGain = e, g
					}
				}
				if best == nil || bestGain <= 0 {
					break
				}
				set.Add(best)
			}
		}
	})
}

// BenchmarkAblationSkipListVsSortedSlice contrasts the engine's skip-list
// ranked list with a sorted-slice implementation under sliding-window churn
// (delete + reinsert at a new score). The slice wins on small lists but
// degrades linearly; the skip list is what keeps Figure 14's update times
// flat at realistic window sizes.
func BenchmarkAblationSkipListVsSortedSlice(b *testing.B) {
	for _, size := range []int{1000, 10000, 50000} {
		b.Run(sizeName("skiplist", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			l := rankedlist.New()
			for i := 0; i < size; i++ {
				l.Upsert(stream.ElemID(i), rng.Float64(), 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Upsert(stream.ElemID(i%size), rng.Float64(), stream.Time(i))
			}
		})
		b.Run(sizeName("sortedslice", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			l := newSliceList()
			for i := 0; i < size; i++ {
				l.upsert(stream.ElemID(i), rng.Float64())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.upsert(stream.ElemID(i%size), rng.Float64())
			}
		})
	}
}

func sizeName(kind string, n int) string {
	switch n {
	case 1000:
		return kind + "-1K"
	case 10000:
		return kind + "-10K"
	default:
		return kind + "-50K"
	}
}

func activesOf(g *core.Engine) []*stream.Element {
	out := make([]*stream.Element, 0, g.NumActive())
	g.Window().ForEachActive(func(e *stream.Element) { out = append(out, e) })
	return out
}

// sliceList is the naive ranked-list alternative: a slice kept sorted by
// (score desc, id asc) with binary-search insert and O(n) memmove.
type sliceList struct {
	items []sliceItem
	pos   map[stream.ElemID]int // approximate position hint, rebuilt on use
}

type sliceItem struct {
	id    stream.ElemID
	score float64
}

func newSliceList() *sliceList {
	return &sliceList{pos: make(map[stream.ElemID]int)}
}

func (l *sliceList) upsert(id stream.ElemID, scoreV float64) {
	// Delete existing entry (linear scan fallback when hint is stale).
	if i, ok := l.pos[id]; ok && i < len(l.items) && l.items[i].id == id {
		l.items = append(l.items[:i], l.items[i+1:]...)
	} else {
		for i := range l.items {
			if l.items[i].id == id {
				l.items = append(l.items[:i], l.items[i+1:]...)
				break
			}
		}
	}
	it := sliceItem{id: id, score: scoreV}
	at := sort.Search(len(l.items), func(i int) bool {
		if l.items[i].score != it.score {
			return l.items[i].score < it.score
		}
		return l.items[i].id >= it.id
	})
	l.items = append(l.items, sliceItem{})
	copy(l.items[at+1:], l.items[at:])
	l.items[at] = it
	l.pos[id] = at
}
