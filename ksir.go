package ksir

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Post is one social element as seen by producers: a timestamped text with
// references to earlier posts (retweet origins, cited papers, comment
// parents).
type Post struct {
	ID   int64
	Time int64 // unix seconds (any monotone integer clock works)
	Text string
	Refs []int64
}

// Options configures a Stream.
type Options struct {
	// Window is the sliding-window length T (default 24h).
	Window time.Duration
	// Bucket is the batch-update interval L (default 15min).
	Bucket time.Duration
	// Lambda ∈ [0,1] trades semantic vs influence score (default 0.5).
	//
	// Historical quirk: the zero value of this field means "use the
	// default", which makes the paper's pure-influence setting λ=0
	// unreachable through it. Pass WithLambda(0) to New to set λ
	// explicitly, including to zero.
	Lambda float64
	// Eta > 0 rescales the influence score (default 20; use larger values
	// for retweet-heavy streams, the paper uses 200 for Twitter).
	Eta float64
}

// StreamOption tunes a Stream beyond the core paper parameters of Options.
type StreamOption func(*streamConfig)

type streamConfig struct {
	lambda     float64
	lambdaSet  bool
	shards     int
	onSubError func(*Subscription, error)
}

// WithLambda sets λ explicitly, distinguishing λ=0 (pure influence) from
// "unset" — the Options.Lambda field cannot express that difference. It
// overrides Options.Lambda.
func WithLambda(l float64) StreamOption {
	return func(c *streamConfig) { c.lambda, c.lambdaSet = l, true }
}

// WithShards sets the number of topic shards the engine's ranked lists are
// partitioned into for parallel maintenance (0, the default, picks
// min(GOMAXPROCS, topics)). Results are independent of the shard count.
func WithShards(p int) StreamOption {
	return func(c *streamConfig) { c.shards = p }
}

// WithSubscriptionErrorHandler installs the stream-wide fallback hook for
// standing-query failures: any subscription refresh that errors and has no
// per-subscription OnError hook reports here. Failures never abort
// ingestion (see Subscribe).
func WithSubscriptionErrorHandler(h func(*Subscription, error)) StreamOption {
	return func(c *streamConfig) { c.onSubError = h }
}

func (o *Options) fill(cfg *streamConfig) error {
	if o.Window == 0 {
		o.Window = 24 * time.Hour
	}
	if o.Bucket == 0 {
		o.Bucket = 15 * time.Minute
	}
	if cfg.lambdaSet {
		o.Lambda = cfg.lambda
	} else if o.Lambda == 0 {
		o.Lambda = 0.5
	}
	if o.Eta == 0 {
		o.Eta = 20
	}
	if o.Window <= 0 || o.Bucket <= 0 || o.Bucket > o.Window {
		return fmt.Errorf("%w: need 0 < Bucket <= Window, got %v / %v", ErrBadOptions, o.Bucket, o.Window)
	}
	if math.IsNaN(o.Lambda) || o.Lambda < 0 || o.Lambda > 1 {
		return fmt.Errorf("%w: lambda must be in [0,1], got %v", ErrBadOptions, o.Lambda)
	}
	if o.Eta <= 0 {
		return fmt.Errorf("%w: eta must be positive, got %v", ErrBadOptions, o.Eta)
	}
	if cfg.shards < 0 {
		return fmt.Errorf("%w: shard count must be non-negative, got %d", ErrBadOptions, cfg.shards)
	}
	return nil
}

// Algorithm selects the query-processing algorithm.
type Algorithm int

const (
	// MTTD (Multi-Topic ThresholdDescend) is the default: best result
	// quality, (1 − 1/e − ε)-approximate.
	MTTD Algorithm = iota
	// MTTS (Multi-Topic ThresholdStream) evaluates each element at most
	// once, (1/2 − ε)-approximate.
	MTTS
	// TopK returns the k individually highest-scored elements (no
	// representativeness; provided for comparison).
	TopK
)

// Query is a k-SIR query. Provide either Keywords (inferred into topic
// space, the paper's query-by-keyword paradigm) or an explicit topic-space
// Vector (query-by-document / personalized paradigms).
type Query struct {
	K        int
	Keywords []string
	// Vector maps topic index → weight; it is normalized internally.
	Vector map[int]float64
	// Epsilon is the approximation knob ε (default 0.1).
	Epsilon float64
	// Algorithm defaults to MTTD.
	Algorithm Algorithm
}

// Result is a query answer.
type Result struct {
	// Posts are the selected elements in selection order.
	Posts []Post
	// Score is the representativeness f(S, x).
	Score float64
	// Evaluated and Active report the pruning effectiveness: how many of
	// the active elements the algorithm actually scored.
	Evaluated int
	Active    int
	// Bucket is the sequence number of the ingested bucket the query
	// observed; every field of the result is consistent with exactly that
	// bucket boundary (see Stream.Query for the visibility contract).
	Bucket int64
}

// Stream is a live k-SIR query processor over one social stream. Add posts
// in timestamp order; query at any time. Stream is safe for concurrent
// queries — including while Add/Flush is ingesting or SwapModel is
// rebuilding — because the engine publishes an immutable snapshot at every
// bucket boundary, queries run against the pinned snapshot without
// locking, and the (model, engine) pair itself is swapped atomically.
// Add/Flush/SwapModel themselves must be called from one goroutine (one
// writer, many readers).
type Stream struct {
	// me is the atomically-published (model, engine) pair: the writer
	// replaces it wholesale on SwapModel, readers load it once per
	// operation so a query never mixes an old model with a new engine.
	me   atomic.Pointer[modelEngine]
	opts Options
	cfg  streamConfig

	bucketLen stream.Time
	pending   []*stream.Element
	// pendingIDs mirrors pending for O(1) duplicate detection at Add time
	// (together with the window's active set), so a duplicate is rejected
	// before it can poison the bucket it would be batched into.
	pendingIDs map[stream.ElemID]struct{}
	// pendingBytes tracks the approximate heap footprint of the pending
	// buffer so the residency accounting stays O(1) per commit. Writer-side
	// only, advisory, never exported.
	pendingBytes int64
	lastTime     stream.Time

	subs   []*Subscription
	subSeq int64
	nsubs  atomic.Int64 // len(subs), readable off the writer goroutine
}

// modelEngine binds a topic model to the engine built over it.
type modelEngine struct {
	model  *Model
	engine *core.Engine
}

// New creates a Stream over a trained model. StreamOptions refine the core
// Options (and WithLambda overrides Options.Lambda, including to zero).
func New(m *Model, opts Options, sopts ...StreamOption) (*Stream, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadOptions)
	}
	var cfg streamConfig
	for _, o := range sopts {
		o(&cfg)
	}
	if err := opts.fill(&cfg); err != nil {
		return nil, err
	}
	eng, err := newEngineForModel(m, opts, cfg.shards)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		opts:       opts,
		cfg:        cfg,
		bucketLen:  stream.Time(opts.Bucket / time.Second),
		pendingIDs: make(map[stream.ElemID]struct{}),
	}
	s.me.Store(&modelEngine{model: m, engine: eng})
	return s, nil
}

// Model returns the stream's current topic model (the one queries are
// inferred against; SwapModel replaces it).
func (s *Stream) Model() *Model { return s.me.Load().model }

// Options returns the stream's resolved options — every defaulted field
// filled in, and Lambda as actually configured (so WithLambda(0) reads
// back as 0).
func (s *Stream) Options() Options { return s.opts }

// Add appends one post to the stream. Posts must arrive in non-decreasing
// time order. The post is buffered and ingested when its bucket completes
// (or on Flush); queries observe it after that point, matching the paper's
// batch-update architecture (Figure 4).
func (s *Stream) Add(p Post) error {
	ts := stream.Time(p.Time)
	if ts <= 0 {
		return fmt.Errorf("%w: post %d has non-positive time %d", ErrBadPost, p.ID, p.Time)
	}
	if ts < s.lastTime {
		return fmt.Errorf("%w: post %d at %d arrives after time %d", ErrOutOfOrder, p.ID, p.Time, s.lastTime)
	}
	// A bucket boundary that has been ingested (e.g. by Flush) is closed:
	// a post at or before it can never be ingested — reject it now as
	// out-of-order instead of poisoning the bucket it would be batched
	// into. WriterNow includes boundaries whose snapshot publication is
	// deferred inside a commit batch (see beginApply), so the check is
	// identical to the serialized path's.
	if ingested := s.me.Load().engine.WriterNow(); ts <= ingested {
		return fmt.Errorf("%w: post %d at %d is at or before the last ingested boundary %d", ErrOutOfOrder, p.ID, p.Time, int64(ingested))
	}
	// Complete buckets before this post's bucket.
	if err := s.advanceTo(ts); err != nil {
		return err
	}
	me := s.me.Load()
	id := stream.ElemID(p.ID)
	if _, dup := s.pendingIDs[id]; dup || me.engine.Window().Known(id) {
		return fmt.Errorf("%w: duplicate post ID %d", ErrBadPost, p.ID)
	}
	m := me.model
	ids := m.tokenIDs(p.Text)
	refs := make([]stream.ElemID, len(p.Refs))
	for i, r := range p.Refs {
		refs[i] = stream.ElemID(r)
	}
	e := &stream.Element{
		ID:     stream.ElemID(p.ID),
		TS:     ts,
		Doc:    textproc.NewDocument(ids),
		Topics: m.inf.InferDoc(ids),
		Refs:   refs,
		Text:   p.Text,
	}
	s.pending = append(s.pending, e)
	s.pendingIDs[id] = struct{}{}
	s.pendingBytes += e.ApproxBytes()
	s.lastTime = ts
	return nil
}

// AddBatch appends posts in order, stopping at the first rejected post. It
// returns how many posts were accepted; when err is non-nil the posts after
// the rejected one were not examined. Equivalent to calling Add in a loop,
// packaged for wire servers and bulk loaders.
func (s *Stream) AddBatch(posts []Post) (int, error) {
	for i, p := range posts {
		if err := s.Add(p); err != nil {
			return i, err
		}
	}
	return len(posts), nil
}

// advanceTo ingests completed buckets so that the pending buffer only holds
// elements of the bucket containing ts.
func (s *Stream) advanceTo(ts stream.Time) error {
	cur := s.bucketEnd()
	for cur != 0 && ts > cur {
		if err := s.flushBucket(cur); err != nil {
			return err
		}
		cur = s.bucketEnd()
	}
	return nil
}

// bucketEnd returns the end time of the bucket holding the oldest pending
// element (0 when nothing is pending).
func (s *Stream) bucketEnd() stream.Time {
	if len(s.pending) == 0 {
		return 0
	}
	first := s.pending[0].TS
	return ((first-1)/s.bucketLen + 1) * s.bucketLen
}

// flushBucket ingests all pending elements with TS ≤ end.
func (s *Stream) flushBucket(end stream.Time) error {
	var batch []*stream.Element
	rest := s.pending[:0]
	for _, e := range s.pending {
		if e.TS <= end {
			batch = append(batch, e)
		} else {
			rest = append(rest, e)
		}
	}
	s.pending = rest
	s.forgetPending(batch)
	if err := s.me.Load().engine.Ingest(end, batch); err != nil {
		// Ordering and duplicates are pre-checked in Add, so an engine
		// rejection here is an internal invariant violation.
		return fmt.Errorf("%w: %v", ErrBadPost, err)
	}
	s.fireSubscriptions(int64(end))
	return nil
}

// forgetPending drops a batch moving out of the pending buffer from the
// duplicate-detection set.
func (s *Stream) forgetPending(batch []*stream.Element) {
	for _, e := range batch {
		delete(s.pendingIDs, e.ID)
		s.pendingBytes -= e.ApproxBytes()
	}
}

// Flush ingests everything buffered up to and including time now, making it
// visible to queries. Use it at end of input or before an immediate query.
func (s *Stream) Flush(now int64) error {
	ts := stream.Time(now)
	if ts < s.lastTime {
		return fmt.Errorf("%w: flush time %d before last post %d", ErrOutOfOrder, now, s.lastTime)
	}
	if err := s.advanceTo(ts + 1); err != nil {
		return err
	}
	if len(s.pending) > 0 || ts > s.me.Load().engine.WriterNow() {
		batch := s.pending
		s.pending = nil
		s.forgetPending(batch)
		if err := s.me.Load().engine.Ingest(ts, batch); err != nil {
			return fmt.Errorf("%w: %v", ErrBadPost, err)
		}
		s.fireSubscriptions(int64(ts))
	}
	s.lastTime = ts
	return nil
}

// beginApply opens a deferred-publish bracket around the application of
// one coalesced commit batch (see StreamHandle's writer pipeline): buckets
// completed inside the bracket are applied to the writer's buffer but
// published as one snapshot at endApply, so a batch crossing several
// bucket boundaries costs one freeze/swap/drain cycle instead of one per
// bucket. Per-op results are unaffected — acceptance decisions read
// writer-side state (WriterNow, the shared archive), not the published
// snapshot.
//
// The bracket is skipped when standing queries are registered:
// subscription refreshes fire at each bucket boundary and query the
// published snapshot, so deferring publication would hand them stale
// results. Writer-side only, like Add and Flush.
func (s *Stream) beginApply() {
	if s.Subscriptions() > 0 {
		return
	}
	s.me.Load().engine.BeginBatch()
}

// endApply closes the bracket opened by beginApply, publishing any
// deferred buckets (a no-op when beginApply skipped the bracket).
func (s *Stream) endApply() {
	s.me.Load().engine.EndBatch()
}

// approxResidentBytes estimates the heap bytes this stream pins while
// resident: the engine's archived window state plus the pending buffer.
// O(1) — both parts are maintained incrementally. Writer-side only, like
// Add; the hub's commit path mirrors it into a lock-free handle counter.
func (s *Stream) approxResidentBytes() int64 {
	return s.me.Load().engine.WriterResidentBytes() + s.pendingBytes
}

// materializeBack builds a lazily deferred back buffer now (the hub's
// background materializer calls it right after activation returns, off
// every critical path). Reports whether it did the work and the build
// duration; a concurrent write materializing first makes it a no-op.
func (s *Stream) materializeBack() (bool, time.Duration, error) {
	return s.me.Load().engine.MaterializeBack()
}

// takeMaterialize returns and clears the timing of a write-path back
// buffer materialization, for span attribution in the hub's commit path.
func (s *Stream) takeMaterialize() (time.Time, time.Duration) {
	return s.me.Load().engine.TakeMaterialize()
}

// Now returns the stream's current time (the end of the last ingested
// bucket).
func (s *Stream) Now() int64 { return int64(s.me.Load().engine.Now()) }

// Active returns the number of active elements n_t.
func (s *Stream) Active() int { return s.me.Load().engine.NumActive() }

// StreamStats is a point-in-time summary of one stream, consistent with the
// last published bucket (the same snapshot queries observe).
type StreamStats struct {
	// Active is the number of elements in the sliding window, n_t.
	Active int
	// Now is the stream time of the last ingested bucket boundary.
	Now int64
	// Bucket is the published bucket sequence number (Result.Bucket of a
	// query issued now).
	Bucket int64
	// Subscriptions is the number of standing queries registered.
	Subscriptions int
	// Elements is the total number of elements ingested over the stream's
	// lifetime (expired ones included).
	Elements int64
	// Persist reports the durability counters. It is only populated by
	// StreamHandle.Stats on a hub opened with OpenHub (Enabled=false
	// otherwise — a raw Stream has no persistence).
	Persist PersistStats
	// Pipeline reports the writer-pipeline counters (queue depth, commit
	// batches, fsyncs). It is only populated by StreamHandle.Stats — a raw
	// Stream has no pipeline.
	Pipeline PipelineStats
	// Residency reports the hot/cold residency state and counters of a
	// hub-managed stream. It is only populated by StreamHandle.Stats — a
	// raw Stream is always resident and has no residency machinery.
	Residency ResidencyStats
}

// Stats reports the stream's current counters. Like Query it reads the
// published snapshot and is safe to call concurrently with ingestion.
func (s *Stream) Stats() StreamStats {
	eng := s.me.Load().engine
	es := eng.Stats()
	return StreamStats{
		Active:        eng.NumActive(),
		Now:           int64(eng.Now()),
		Bucket:        es.Buckets,
		Subscriptions: s.Subscriptions(),
		Elements:      es.ElementsIngested,
	}
}

// Query answers a k-SIR query against the currently ingested window.
//
// Snapshot visibility: a query observes exactly the state at the end of the
// last ingested bucket — the paper's batch-update contract (Figure 4) made
// concurrency-safe. The query pins that snapshot for its whole run, so it
// is safe to call from any number of goroutines concurrently with Add and
// Flush; a query that races an in-flight bucket sees either the bucket
// before it or (once ingest completes and publishes) the bucket itself,
// never a partial state. Result.Bucket reports which bucket was observed.
// Posts buffered in the current, incomplete bucket are not yet visible —
// call Flush to force them in.
//
// Cancellation: ctx is polled between ranked-list descents; a cancelled or
// expired context aborts the query with ctx.Err() (unwrapped) and releases
// the snapshot promptly. A nil ctx is treated as context.Background().
func (s *Stream) Query(ctx context.Context, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.K <= 0 {
		return Result{}, fmt.Errorf("%w: query needs K > 0", ErrBadQuery)
	}
	me := s.me.Load()
	x, err := queryVector(me.model, q)
	if err != nil {
		return Result{}, err
	}
	var alg core.Algorithm
	switch q.Algorithm {
	case MTTD:
		alg = core.MTTD
	case MTTS:
		alg = core.MTTS
	case TopK:
		alg = core.TopkRep
	default:
		return Result{}, fmt.Errorf("%w: unknown algorithm %d", ErrBadQuery, q.Algorithm)
	}
	res, err := me.engine.QueryContext(ctx, core.Query{K: q.K, X: x, Epsilon: q.Epsilon, Algorithm: alg})
	if err != nil {
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		return Result{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	out := Result{
		Score:     res.Score,
		Evaluated: res.Evaluated,
		Active:    res.ActiveAtQuery,
		Bucket:    res.BucketSeq,
	}
	for _, e := range res.Elements {
		out.Posts = append(out.Posts, Post{
			ID:   int64(e.ID),
			Time: int64(e.TS),
			Text: e.Text,
			Refs: refsToInt64(e.Refs),
		})
	}
	return out, nil
}

// queryVector builds the normalized topic vector from Keywords or Vector
// against one consistent model (callers load the Stream's pair once so a
// concurrent SwapModel cannot mix models mid-query).
func queryVector(m *Model, q Query) (topicmodel.TopicVec, error) {
	if len(q.Vector) > 0 {
		idx := make([]int, 0, len(q.Vector))
		var sum float64
		for t, w := range q.Vector {
			if t < 0 || t >= m.tm.Z {
				return topicmodel.TopicVec{}, fmt.Errorf("%w: topic %d out of range [0,%d)", ErrBadQuery, t, m.tm.Z)
			}
			if w < 0 {
				return topicmodel.TopicVec{}, fmt.Errorf("%w: negative weight %v for topic %d", ErrBadQuery, w, t)
			}
			if w > 0 {
				idx = append(idx, t)
				sum += w
			}
		}
		if sum == 0 {
			return topicmodel.TopicVec{}, fmt.Errorf("%w: query vector is all zeros", ErrBadQuery)
		}
		sort.Ints(idx)
		v := topicmodel.TopicVec{
			Topics: make([]int32, len(idx)),
			Probs:  make([]float64, len(idx)),
		}
		for i, t := range idx {
			v.Topics[i] = int32(t)
			v.Probs[i] = q.Vector[t] / sum
		}
		return v, nil
	}
	if len(q.Keywords) == 0 {
		return topicmodel.TopicVec{}, fmt.Errorf("%w: query needs Keywords or Vector", ErrBadQuery)
	}
	var ids []textproc.WordID
	for _, kw := range q.Keywords {
		ids = append(ids, m.tokenIDs(kw)...)
	}
	x := m.inf.InferDense(ids).Truncate(8, 0.02)
	if x.Len() == 0 {
		return topicmodel.TopicVec{}, fmt.Errorf("%w: no query keyword appears in the model vocabulary", ErrBadQuery)
	}
	return x, nil
}

func refsToInt64(refs []stream.ElemID) []int64 {
	if len(refs) == 0 {
		return nil
	}
	out := make([]int64, len(refs))
	for i, r := range refs {
		out[i] = int64(r)
	}
	return out
}
