package ksir

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/social-streams/ksir/internal/core"
	"github.com/social-streams/ksir/internal/stream"
	"github.com/social-streams/ksir/internal/textproc"
	"github.com/social-streams/ksir/internal/topicmodel"
)

// Post is one social element as seen by producers: a timestamped text with
// references to earlier posts (retweet origins, cited papers, comment
// parents).
type Post struct {
	ID   int64
	Time int64 // unix seconds (any monotone integer clock works)
	Text string
	Refs []int64
}

// Options configures a Stream.
type Options struct {
	// Window is the sliding-window length T (default 24h).
	Window time.Duration
	// Bucket is the batch-update interval L (default 15min).
	Bucket time.Duration
	// Lambda ∈ [0,1] trades semantic vs influence score (default 0.5).
	Lambda float64
	// Eta > 0 rescales the influence score (default 20; use larger values
	// for retweet-heavy streams, the paper uses 200 for Twitter).
	Eta float64
}

func (o *Options) fill() error {
	if o.Window == 0 {
		o.Window = 24 * time.Hour
	}
	if o.Bucket == 0 {
		o.Bucket = 15 * time.Minute
	}
	if o.Lambda == 0 {
		o.Lambda = 0.5
	}
	if o.Eta == 0 {
		o.Eta = 20
	}
	if o.Window <= 0 || o.Bucket <= 0 || o.Bucket > o.Window {
		return fmt.Errorf("ksir: need 0 < Bucket <= Window, got %v / %v", o.Bucket, o.Window)
	}
	return nil
}

// Algorithm selects the query-processing algorithm.
type Algorithm int

const (
	// MTTD (Multi-Topic ThresholdDescend) is the default: best result
	// quality, (1 − 1/e − ε)-approximate.
	MTTD Algorithm = iota
	// MTTS (Multi-Topic ThresholdStream) evaluates each element at most
	// once, (1/2 − ε)-approximate.
	MTTS
	// TopK returns the k individually highest-scored elements (no
	// representativeness; provided for comparison).
	TopK
)

// Query is a k-SIR query. Provide either Keywords (inferred into topic
// space, the paper's query-by-keyword paradigm) or an explicit topic-space
// Vector (query-by-document / personalized paradigms).
type Query struct {
	K        int
	Keywords []string
	// Vector maps topic index → weight; it is normalized internally.
	Vector map[int]float64
	// Epsilon is the approximation knob ε (default 0.1).
	Epsilon float64
	// Algorithm defaults to MTTD.
	Algorithm Algorithm
}

// Result is a query answer.
type Result struct {
	// Posts are the selected elements in selection order.
	Posts []Post
	// Score is the representativeness f(S, x).
	Score float64
	// Evaluated and Active report the pruning effectiveness: how many of
	// the active elements the algorithm actually scored.
	Evaluated int
	Active    int
	// Bucket is the sequence number of the ingested bucket the query
	// observed; every field of the result is consistent with exactly that
	// bucket boundary (see Stream.Query for the visibility contract).
	Bucket int64
}

// Stream is a live k-SIR query processor over one social stream. Add posts
// in timestamp order; query at any time. Stream is safe for concurrent
// queries — including while Add/Flush is ingesting or SwapModel is
// rebuilding — because the engine publishes an immutable snapshot at every
// bucket boundary, queries run against the pinned snapshot without
// locking, and the (model, engine) pair itself is swapped atomically.
// Add/Flush/SwapModel themselves must be called from one goroutine (one
// writer, many readers).
type Stream struct {
	// me is the atomically-published (model, engine) pair: the writer
	// replaces it wholesale on SwapModel, readers load it once per
	// operation so a query never mixes an old model with a new engine.
	me   atomic.Pointer[modelEngine]
	opts Options

	bucketLen stream.Time
	pending   []*stream.Element
	lastTime  stream.Time

	subs   []*Subscription
	subSeq int64
}

// modelEngine binds a topic model to the engine built over it.
type modelEngine struct {
	model  *Model
	engine *core.Engine
}

// New creates a Stream over a trained model.
func New(m *Model, opts Options) (*Stream, error) {
	if m == nil {
		return nil, fmt.Errorf("ksir: nil model")
	}
	if err := opts.fill(); err != nil {
		return nil, err
	}
	eng, err := newEngineForModel(m, opts)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		opts:      opts,
		bucketLen: stream.Time(opts.Bucket / time.Second),
	}
	s.me.Store(&modelEngine{model: m, engine: eng})
	return s, nil
}

// Add appends one post to the stream. Posts must arrive in non-decreasing
// time order. The post is buffered and ingested when its bucket completes
// (or on Flush); queries observe it after that point, matching the paper's
// batch-update architecture (Figure 4).
func (s *Stream) Add(p Post) error {
	ts := stream.Time(p.Time)
	if ts <= 0 {
		return fmt.Errorf("ksir: post %d has non-positive time %d", p.ID, p.Time)
	}
	if ts < s.lastTime {
		return fmt.Errorf("ksir: post %d at %d arrives after time %d", p.ID, p.Time, s.lastTime)
	}
	// Complete buckets before this post's bucket.
	if err := s.advanceTo(ts); err != nil {
		return err
	}
	m := s.me.Load().model
	ids := m.tokenIDs(p.Text)
	refs := make([]stream.ElemID, len(p.Refs))
	for i, r := range p.Refs {
		refs[i] = stream.ElemID(r)
	}
	e := &stream.Element{
		ID:     stream.ElemID(p.ID),
		TS:     ts,
		Doc:    textproc.NewDocument(ids),
		Topics: m.inf.InferDoc(ids),
		Refs:   refs,
		Text:   p.Text,
	}
	s.pending = append(s.pending, e)
	s.lastTime = ts
	return nil
}

// advanceTo ingests completed buckets so that the pending buffer only holds
// elements of the bucket containing ts.
func (s *Stream) advanceTo(ts stream.Time) error {
	cur := s.bucketEnd()
	for cur != 0 && ts > cur {
		if err := s.flushBucket(cur); err != nil {
			return err
		}
		cur = s.bucketEnd()
	}
	return nil
}

// bucketEnd returns the end time of the bucket holding the oldest pending
// element (0 when nothing is pending).
func (s *Stream) bucketEnd() stream.Time {
	if len(s.pending) == 0 {
		return 0
	}
	first := s.pending[0].TS
	return ((first-1)/s.bucketLen + 1) * s.bucketLen
}

// flushBucket ingests all pending elements with TS ≤ end.
func (s *Stream) flushBucket(end stream.Time) error {
	var batch []*stream.Element
	rest := s.pending[:0]
	for _, e := range s.pending {
		if e.TS <= end {
			batch = append(batch, e)
		} else {
			rest = append(rest, e)
		}
	}
	s.pending = rest
	if err := s.me.Load().engine.Ingest(end, batch); err != nil {
		return err
	}
	return s.fireSubscriptions(int64(end))
}

// Flush ingests everything buffered up to and including time now, making it
// visible to queries. Use it at end of input or before an immediate query.
func (s *Stream) Flush(now int64) error {
	ts := stream.Time(now)
	if ts < s.lastTime {
		return fmt.Errorf("ksir: flush time %d before last post %d", now, s.lastTime)
	}
	if err := s.advanceTo(ts + 1); err != nil {
		return err
	}
	if len(s.pending) > 0 || ts > s.me.Load().engine.Now() {
		batch := s.pending
		s.pending = nil
		if err := s.me.Load().engine.Ingest(ts, batch); err != nil {
			return err
		}
		if err := s.fireSubscriptions(int64(ts)); err != nil {
			return err
		}
	}
	s.lastTime = ts
	return nil
}

// Now returns the stream's current time (the end of the last ingested
// bucket).
func (s *Stream) Now() int64 { return int64(s.me.Load().engine.Now()) }

// Active returns the number of active elements n_t.
func (s *Stream) Active() int { return s.me.Load().engine.NumActive() }

// Query answers a k-SIR query against the currently ingested window.
//
// Snapshot visibility: a query observes exactly the state at the end of the
// last ingested bucket — the paper's batch-update contract (Figure 4) made
// concurrency-safe. The query pins that snapshot for its whole run, so it
// is safe to call from any number of goroutines concurrently with Add and
// Flush; a query that races an in-flight bucket sees either the bucket
// before it or (once ingest completes and publishes) the bucket itself,
// never a partial state. Result.Bucket reports which bucket was observed.
// Posts buffered in the current, incomplete bucket are not yet visible —
// call Flush to force them in.
func (s *Stream) Query(q Query) (Result, error) {
	if q.K <= 0 {
		return Result{}, fmt.Errorf("ksir: query needs K > 0")
	}
	me := s.me.Load()
	x, err := queryVector(me.model, q)
	if err != nil {
		return Result{}, err
	}
	var alg core.Algorithm
	switch q.Algorithm {
	case MTTD:
		alg = core.MTTD
	case MTTS:
		alg = core.MTTS
	case TopK:
		alg = core.TopkRep
	default:
		return Result{}, fmt.Errorf("ksir: unknown algorithm %d", q.Algorithm)
	}
	res, err := me.engine.Query(core.Query{K: q.K, X: x, Epsilon: q.Epsilon, Algorithm: alg})
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Score:     res.Score,
		Evaluated: res.Evaluated,
		Active:    res.ActiveAtQuery,
		Bucket:    res.BucketSeq,
	}
	for _, e := range res.Elements {
		out.Posts = append(out.Posts, Post{
			ID:   int64(e.ID),
			Time: int64(e.TS),
			Text: e.Text,
			Refs: refsToInt64(e.Refs),
		})
	}
	return out, nil
}

// queryVector builds the normalized topic vector from Keywords or Vector
// against one consistent model (callers load the Stream's pair once so a
// concurrent SwapModel cannot mix models mid-query).
func queryVector(m *Model, q Query) (topicmodel.TopicVec, error) {
	if len(q.Vector) > 0 {
		idx := make([]int, 0, len(q.Vector))
		var sum float64
		for t, w := range q.Vector {
			if t < 0 || t >= m.tm.Z {
				return topicmodel.TopicVec{}, fmt.Errorf("ksir: topic %d out of range [0,%d)", t, m.tm.Z)
			}
			if w < 0 {
				return topicmodel.TopicVec{}, fmt.Errorf("ksir: negative weight %v for topic %d", w, t)
			}
			if w > 0 {
				idx = append(idx, t)
				sum += w
			}
		}
		if sum == 0 {
			return topicmodel.TopicVec{}, fmt.Errorf("ksir: query vector is all zeros")
		}
		sort.Ints(idx)
		v := topicmodel.TopicVec{
			Topics: make([]int32, len(idx)),
			Probs:  make([]float64, len(idx)),
		}
		for i, t := range idx {
			v.Topics[i] = int32(t)
			v.Probs[i] = q.Vector[t] / sum
		}
		return v, nil
	}
	if len(q.Keywords) == 0 {
		return topicmodel.TopicVec{}, fmt.Errorf("ksir: query needs Keywords or Vector")
	}
	var ids []textproc.WordID
	for _, kw := range q.Keywords {
		ids = append(ids, m.tokenIDs(kw)...)
	}
	x := m.inf.InferDense(ids).Truncate(8, 0.02)
	if x.Len() == 0 {
		return topicmodel.TopicVec{}, fmt.Errorf("ksir: no query keyword appears in the model vocabulary")
	}
	return x, nil
}

func refsToInt64(refs []stream.ElemID) []int64 {
	if len(refs) == 0 {
		return nil
	}
	out := make([]int64, len(refs))
	for i, r := range refs {
		out[i] = int64(r)
	}
	return out
}
