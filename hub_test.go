package ksir

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHubCreateGetListClose(t *testing.T) {
	m := trainTestModel(t)
	h := NewHub()

	soccer, err := h.Create("soccer", m, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if soccer.Name() != "soccer" {
		t.Errorf("name = %q", soccer.Name())
	}
	if _, err := h.Create("basket", m, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2}); err != nil {
		t.Fatal(err)
	}

	// Duplicate names and invalid names are typed errors.
	if _, err := h.Create("soccer", m, Options{}); !errors.Is(err, ErrStreamExists) {
		t.Errorf("duplicate create err = %v, want ErrStreamExists", err)
	}
	for _, bad := range []string{"", "a/b", "a b", "x\ty", "x\ry", "x\ny", ".", ".."} {
		if _, err := h.Create(bad, m, Options{}); !errors.Is(err, ErrBadOptions) {
			t.Errorf("name %q err = %v, want ErrBadOptions", bad, err)
		}
	}

	got, err := h.Get("soccer")
	if err != nil || got != soccer {
		t.Fatalf("Get: %v %v", got, err)
	}
	if _, err := h.Get("nope"); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("unknown get err = %v, want ErrUnknownStream", err)
	}

	names := h.List()
	if len(names) != 2 || names[0] != "basket" || names[1] != "soccer" {
		t.Errorf("List = %v", names)
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}

	if err := h.Close("basket"); err != nil {
		t.Fatal(err)
	}
	if err := h.Close("basket"); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("double close err = %v, want ErrUnknownStream", err)
	}
	if h.Len() != 1 {
		t.Errorf("Len after close = %d", h.Len())
	}
}

func TestHubClosedHandleRejectsOperations(t *testing.T) {
	m := trainTestModel(t)
	h := NewHub()
	hs, err := h.Create("s", m, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Add(Post{ID: 1, Time: 10, Text: "goal"}); err != nil {
		t.Fatal(err)
	}
	if err := h.Close("s"); err != nil {
		t.Fatal(err)
	}
	if err := hs.Add(Post{ID: 2, Time: 20, Text: "goal"}); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("Add on closed err = %v, want ErrStreamClosed", err)
	}
	if err := hs.Flush(100); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("Flush on closed err = %v, want ErrStreamClosed", err)
	}
	if _, err := hs.Query(context.Background(), Query{K: 1, Keywords: []string{"goal"}}); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("Query on closed err = %v, want ErrStreamClosed", err)
	}
	if _, err := hs.AddBatch([]Post{{ID: 3, Time: 30, Text: "goal"}}); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("AddBatch on closed err = %v, want ErrStreamClosed", err)
	}
	if _, err := hs.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"goal"}}, time.Hour, func(Result) {}); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("Subscribe on closed err = %v, want ErrStreamClosed", err)
	}
}

func TestHubAdoptSerializesExistingStream(t *testing.T) {
	st := newTwoTopicStream(t)
	h := NewHub()
	hs, err := h.Adopt("legacy", st)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Stream() != st {
		t.Error("handle does not wrap the adopted stream")
	}
	stats := hs.Stats()
	if stats.Active == 0 || stats.Now == 0 || stats.Bucket == 0 {
		t.Errorf("stats not carried over: %+v", stats)
	}
	if _, err := h.Adopt("legacy2", nil); !errors.Is(err, ErrBadOptions) {
		t.Errorf("nil adopt err = %v", err)
	}
}

// The Hub's reason to exist: many goroutines ingest into and query several
// streams at once with no caller-side locking, and every observation stays
// consistent (run under -race).
func TestHubConcurrentMultiStream(t *testing.T) {
	m := trainTestModel(t)
	h := NewHub()
	const streams = 3
	handles := make([]*StreamHandle, streams)
	for i := range handles {
		var err error
		handles[i], err = h.Create(fmt.Sprintf("s%d", i), m,
			Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, streams*4)
	// Two writers per stream — the handle must serialize them; the posts
	// interleave but each batch is internally ordered (same timestamps are
	// allowed, so two writers at the same clock cannot go out of order).
	for si, hs := range handles {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(si, w int, hs *StreamHandle) {
				defer wg.Done()
				for i := 0; i < 60; i++ {
					ts := int64(1 + i*10)
					id := int64(si*100000 + w*10000 + i + 1)
					text := "goal striker league"
					if i%2 == 1 {
						text = "dunk rebound playoffs"
					}
					err := hs.Add(Post{ID: id, Time: ts, Text: text})
					// A concurrent writer may already have advanced the
					// stream clock past ts: that out-of-order rejection is
					// expected and must be typed; anything else is a bug.
					if err != nil && !errors.Is(err, ErrOutOfOrder) {
						errs <- fmt.Errorf("stream %d writer %d: %v", si, w, err)
						return
					}
				}
				if err := hs.Flush(700); err != nil && !errors.Is(err, ErrOutOfOrder) {
					errs <- fmt.Errorf("stream %d writer %d flush: %v", si, w, err)
				}
			}(si, w, hs)
		}
		// Two readers per stream, concurrent with the writers.
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(si int, hs *StreamHandle) {
				defer wg.Done()
				var last int64 = -1
				for i := 0; i < 40; i++ {
					res, err := hs.Query(context.Background(), Query{K: 3, Keywords: []string{"goal"}})
					if err != nil {
						errs <- fmt.Errorf("stream %d query: %v", si, err)
						return
					}
					if res.Bucket < last {
						errs <- fmt.Errorf("stream %d bucket went backwards %d -> %d", si, last, res.Bucket)
						return
					}
					last = res.Bucket
					_ = hs.Stats()
				}
			}(si, hs)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every stream ingested something and answers queries.
	for i, hs := range handles {
		if err := hs.Flush(700); err != nil && !errors.Is(err, ErrOutOfOrder) {
			t.Fatal(err)
		}
		if hs.Stats().Active == 0 {
			t.Errorf("stream %d empty after concurrent ingest", i)
		}
	}
}

func TestStreamHandleAddBatch(t *testing.T) {
	m := trainTestModel(t)
	h := NewHub()
	hs, err := h.Create("b", m, Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	n, err := hs.AddBatch([]Post{
		{ID: 1, Time: 10, Text: "goal"},
		{ID: 2, Time: 20, Text: "dunk"},
		{ID: 3, Time: 5, Text: "late"}, // out of order: rejected
		{ID: 4, Time: 30, Text: "never examined"},
	})
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
	if n != 2 {
		t.Errorf("accepted = %d, want 2", n)
	}
	if err := hs.Flush(60); err != nil {
		t.Fatal(err)
	}
	if got := hs.Stats().Active; got != 2 {
		t.Errorf("active = %d, want 2", got)
	}
}
