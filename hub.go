package ksir

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/social-streams/ksir/internal/persist"
	"github.com/social-streams/ksir/internal/trace"
)

// Hub is a named, multi-tenant registry of streams — the deployment §2
// motivates ("thousands of users submit different queries at the same
// time") widened to many tenants: each scenario (a city's feed, one
// conference's papers, a product's mentions) gets its own named stream
// with its own window, model and standing queries.
//
// Hub also moves the single-writer discipline into the library: every
// stream is wrapped in a StreamHandle whose write operations (Add,
// AddBatch, Flush, Checkpoint, SwapModel, Subscribe, Unsubscribe) are
// executed by one writer goroutine per stream, fed through a bounded
// operation queue — so wire servers and multi-goroutine producers stop
// hand-rolling their own locks, and adjacent operations from concurrent
// producers coalesce into commit batches that share one WAL append and
// one fsync (see StreamHandle). Queries stay lock-free (they read the
// engine's published snapshot) and never contend with writers — on the
// same stream or any other.
//
// A Hub opened with OpenHub is additionally durable: stream state is
// write-ahead logged and checkpointed under a data directory, and
// recovered on the next OpenHub (see persistence.go).
//
// Lifecycle: every registered stream owns a writer goroutine, released
// only by Close/CloseAll. A hub that is dropped without being closed
// leaks those goroutines (and the streams they pin) — close hubs you
// abandon, in-memory ones included.
//
// All Hub methods are safe for concurrent use.
type Hub struct {
	mu      sync.RWMutex
	streams map[string]*StreamHandle
	// p is the durability configuration (nil for an in-memory hub).
	p *hubPersist
	// serialized selects the pre-pipeline writer path for every handle
	// (see WithSerializedWriter).
	serialized bool
	// logger receives background warnings (residency sweep failures);
	// nil means slog.Default() at call time.
	logger *slog.Logger

	// Background hibernator (only running when a residency budget is
	// configured; see PersistOptions.MaxResidentStreams).
	hibStop chan struct{}
	hibDone chan struct{}
	hibOnce sync.Once

	// Ghost list (EvictClock only): names of recently hibernated streams,
	// keyed to an eviction sequence so the oldest entries age out. A
	// reactivation that finds its name here was evicted too eagerly — it
	// re-admits protected (second-chance bit set) and counts a ghost hit.
	ghostMu  sync.Mutex
	ghost    map[string]uint64
	ghostSeq uint64

	// Background predictive prefetcher (PersistOptions.PrefetchSweep > 0).
	pfStop chan struct{}
	pfDone chan struct{}
	pfOnce sync.Once

	// Background back-buffer materializer (every durable hub): freshly
	// activated streams are queued here so their lazily deferred back
	// buffer is built off both the activation and the first-write path. A
	// full queue just drops the handoff — the first write pays the build.
	matq    chan matReq
	matStop chan struct{}
	matDone chan struct{}
	matOnce sync.Once

	// lastActivateNs is the hub-wide activation clock (UnixNano of the
	// most recent stream activation); the materializer defers builds
	// until it has been quiet for materializeDebounce.
	lastActivateNs atomic.Int64
}

// HubOption tunes a Hub created with NewHub.
type HubOption func(*Hub)

// WithSerializedWriter disables the per-stream writer pipeline: each write
// operation is executed synchronously under a per-stream mutex and, on a
// durable hub, appended (and under FsyncAlways fsynced) individually —
// the pre-pipeline architecture. Results are identical to the pipelined
// path op for op; only the batching of WAL writes and snapshot publishes
// differs. It exists as the measured baseline of the `ingest` experiment
// and as a compatibility escape hatch; production hubs should not use it.
// For a durable hub, set PersistOptions.SerializedWriter instead.
func WithSerializedWriter() HubOption {
	return func(h *Hub) { h.serialized = true }
}

// WithLogger directs the hub's background warnings — residency sweep
// failures, for now — to l instead of slog.Default(). For a durable hub,
// set PersistOptions.Logger instead.
func WithLogger(l *slog.Logger) HubOption {
	return func(h *Hub) { h.logger = l }
}

// log returns the hub's logger, resolving nil to the process default so a
// logger installed with slog.SetDefault after NewHub is still honored.
func (h *Hub) log() *slog.Logger {
	if h.logger != nil {
		return h.logger
	}
	return slog.Default()
}

// NewHub creates an empty registry. Call CloseAll when done with it:
// each stream's writer goroutine runs until its stream is closed.
func NewHub(opts ...HubOption) *Hub {
	h := &Hub{
		streams: make(map[string]*StreamHandle),
		ghost:   make(map[string]uint64),
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// validName rejects names that cannot round-trip through a URL path
// segment or an index listing.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty stream name", ErrBadOptions)
	}
	if len(name) > 128 {
		return fmt.Errorf("%w: stream name longer than 128 bytes", ErrBadOptions)
	}
	if strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("%w: stream name %q contains '/' or a space", ErrBadOptions, name)
	}
	// Control characters (CR/LF/TAB/...) would survive into protocol
	// lines — SSE comments, logs, listings — as raw line breaks.
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("%w: stream name contains control character %q", ErrBadOptions, r)
		}
	}
	// "." and ".." survive url.PathEscape but are path-cleaned away by
	// HTTP routers, leaving the stream unreachable over the wire.
	if name == "." || name == ".." {
		return fmt.Errorf("%w: stream name %q is a path dot segment", ErrBadOptions, name)
	}
	return nil
}

// Create registers a new stream under name, built over m with the given
// options. It fails with ErrStreamExists if the name is taken and
// ErrBadOptions for an invalid name or configuration. On a durable hub the
// stream's directory, manifest and WAL are provisioned before Create
// returns (and a leftover directory for the name is ErrStreamExists —
// closed streams keep their durable state).
func (h *Hub) Create(name string, m *Model, opts Options, sopts ...StreamOption) (*StreamHandle, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	st, err := New(m, opts, sopts...)
	if err != nil {
		return nil, err
	}
	return h.registerPersistent(name, st)
}

// Adopt registers an existing stream under name. The caller must stop
// writing to st directly: after Adopt, all writes go through the returned
// handle (which owns the stream's writer goroutine). On a durable hub the
// adopted stream's current state is checkpointed immediately, so it is
// durable from the moment Adopt returns.
func (h *Hub) Adopt(name string, st *Stream) (*StreamHandle, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("%w: nil stream", ErrBadOptions)
	}
	return h.registerPersistent(name, st)
}

// registerPersistent registers the stream and, on a durable hub,
// provisions its on-disk state first — directory, manifest, WAL, and the
// initial checkpoint when the stream already has ingested state (Adopt).
// Provisioning happens under the hub lock, before the handle is
// reachable through Get: a concurrently created handle can never be
// observed without its persistence attached (writes on it would bypass
// the WAL).
func (h *Hub) registerPersistent(name string, st *Stream) (*StreamHandle, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.streams[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
	}
	var pers *streamPersist
	if h.p != nil {
		var err error
		pers, err = h.p.initStream(name, st)
		if err != nil {
			return nil, err
		}
	}
	hs := h.newHandle(name, st, st.Model(), st.opts, st.cfg, pers)
	h.streams[name] = hs
	return hs, nil
}

// registerWith inserts a handle with its persistence state already
// attached (pers may be nil for in-memory streams).
func (h *Hub) registerWith(name string, st *Stream, pers *streamPersist) (*StreamHandle, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.streams[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
	}
	hs := h.newHandle(name, st, st.Model(), st.opts, st.cfg, pers)
	h.streams[name] = hs
	return hs, nil
}

// registerCold inserts a hibernated handle: no in-memory stream, the
// durable state untouched on disk until the first touching operation
// reactivates it (cold recovery under a residency budget).
func (h *Hub) registerCold(name string, m *Model, opts Options, cfg streamConfig, pers *streamPersist) (*StreamHandle, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.streams[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
	}
	hs := h.newHandle(name, nil, m, opts, cfg, pers)
	h.streams[name] = hs
	return hs, nil
}

// newHandle builds a handle and, unless the hub runs serialized writers,
// starts its writer goroutine. st may be nil (registerCold): the handle
// starts hibernated and every other field needed to bring the stream back
// — model, resolved options, config — lives on the handle itself.
func (h *Hub) newHandle(name string, st *Stream, m *Model, opts Options, cfg streamConfig, pers *streamPersist) *StreamHandle {
	hs := &StreamHandle{
		name:       name,
		hub:        h,
		opts:       opts,
		cfg:        cfg,
		pers:       pers,
		done:       make(chan struct{}),
		serialized: h.serialized,
	}
	hs.stp.Store(st)
	hs.model.Store(m)
	hs.lastTouch.Store(time.Now().UnixNano())
	if st != nil {
		hs.residentBytes.Store(st.approxResidentBytes())
	}
	if h.p != nil {
		hs.commitWindow = h.p.opts.CommitWindow
	}
	if !hs.serialized {
		hs.ops = make(chan *writeOp, writeQueueCap)
		go hs.writerLoop()
	}
	return hs
}

// residencyBudgeted reports whether the hub has a hot-tier budget to
// enforce (see PersistOptions.MaxResidentStreams / MaxResidentBytes).
func (h *Hub) residencyBudgeted() bool {
	return h.p != nil && (h.p.opts.MaxResidentStreams > 0 || h.p.opts.MaxResidentBytes > 0)
}

// startHibernator launches the background residency sweep (no-op without
// a budget). Called once, from OpenHub.
func (h *Hub) startHibernator() {
	if !h.residencyBudgeted() {
		return
	}
	h.hibStop = make(chan struct{})
	h.hibDone = make(chan struct{})
	sweep := h.p.opts.ResidencySweep
	go func() {
		defer close(h.hibDone)
		t := time.NewTicker(sweep)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := h.EnforceResidency(); err != nil {
					h.log().Warn("residency sweep failed", "error", err)
				}
			case <-h.hibStop:
				return
			}
		}
	}()
}

// stopHibernator ends the background sweep and waits for it to exit, so
// no hibernate op can be enqueued after CloseAll starts draining.
func (h *Hub) stopHibernator() {
	if h.hibStop == nil {
		return
	}
	h.hibOnce.Do(func() { close(h.hibStop) })
	<-h.hibDone
}

// evictionPolicy resolves the hub's victim policy (EvictClock on
// in-memory hubs, which never evict anyway).
func (h *Hub) evictionPolicy() EvictionPolicy {
	if h.p == nil {
		return EvictClock
	}
	return h.p.opts.Eviction
}

// ghostRecord remembers a hibernated stream's name on the ghost list
// (EvictClock under a residency budget only). The list is bounded at
// max(32, 2×MaxResidentStreams); the oldest entry ages out first.
func (h *Hub) ghostRecord(name string) {
	if !h.residencyBudgeted() || h.evictionPolicy() != EvictClock {
		return
	}
	limit := 2 * h.p.opts.MaxResidentStreams
	if limit < 32 {
		limit = 32
	}
	h.ghostMu.Lock()
	defer h.ghostMu.Unlock()
	h.ghostSeq++
	h.ghost[name] = h.ghostSeq
	for len(h.ghost) > limit {
		oldName, oldSeq := "", uint64(0)
		for n, s := range h.ghost {
			if oldName == "" || s < oldSeq {
				oldName, oldSeq = n, s
			}
		}
		delete(h.ghost, oldName)
	}
}

// ghostTake consumes a ghost-list entry for name, reporting whether one
// existed — the activation path's "evicted too eagerly" signal.
func (h *Hub) ghostTake(name string) bool {
	if h.p == nil || h.evictionPolicy() != EvictClock {
		return false
	}
	h.ghostMu.Lock()
	defer h.ghostMu.Unlock()
	if _, ok := h.ghost[name]; !ok {
		return false
	}
	delete(h.ghost, name)
	return true
}

// startPrefetcher launches the background predictive prefetcher (no-op
// unless PrefetchSweep is set). Called once, from OpenHub.
func (h *Hub) startPrefetcher() {
	if h.p == nil || h.p.opts.PrefetchSweep <= 0 {
		return
	}
	h.pfStop = make(chan struct{})
	h.pfDone = make(chan struct{})
	sweep := h.p.opts.PrefetchSweep
	go func() {
		defer close(h.pfDone)
		t := time.NewTicker(sweep)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.prefetchSweep()
			case <-h.pfStop:
				return
			}
		}
	}()
}

// stopPrefetcher ends the prefetch sweep and waits for it to exit.
func (h *Hub) stopPrefetcher() {
	if h.pfStop == nil {
		return
	}
	h.pfOnce.Do(func() { close(h.pfStop) })
	<-h.pfDone
}

// prefetchSweep scans the hibernated streams once and enqueues a
// fire-and-forget activation for each one that is due — by standing hint
// (StreamHandle.Prefetch) or by its predicted next touch falling within
// the lookahead. Everything is best-effort and non-blocking: a stream
// whose queue is busy is simply picked up by a later sweep or by the
// demand operation it was predicted for.
func (h *Hub) prefetchSweep() {
	look := int64(h.p.opts.PrefetchLookahead)
	now := time.Now().UnixNano()
	h.mu.RLock()
	var due []*StreamHandle
	for _, hs := range h.streams {
		if hs.stp.Load() != nil || hs.pers == nil {
			continue
		}
		if hs.prefetchDue(now, look) {
			due = append(due, hs)
		}
	}
	h.mu.RUnlock()
	for _, hs := range due {
		hs.tryActivateAsync()
	}
}

// matReq is one queued background build; at is the activation time the
// debounce counts from.
type matReq struct {
	hs *StreamHandle
	at time.Time
}

// startMaterializer launches the background back-buffer builder (every
// durable hub: activations are lazy by default). Builds are debounced
// against the hub's activation clock: a queued build waits until no
// stream anywhere on the hub has activated for materializeDebounce. That
// buys two things. A stream churned straight back out of the hot tier
// (activated by one read, evicted by the next admission) never pays for a
// back buffer nobody will write to — materializeNow skips streams
// hibernated in the meantime. And during an activation storm (tenant
// churn, cold restart) the builder stays silent instead of stealing CPU
// from demand activations — a ~1ms build scheduled between two cold
// touches shows up directly in their queue-wait tail on small hosts.
// Streams that stay resident get their buffer built once the storm
// subsides, well before a typical first write; if a write lands sooner,
// it builds inline exactly as if there were no background task. Called
// once, from OpenHub.
func (h *Hub) startMaterializer() {
	if h.p == nil {
		return
	}
	h.matq = make(chan matReq, materializeQueueCap)
	h.matStop = make(chan struct{})
	h.matDone = make(chan struct{})
	go func() {
		defer close(h.matDone)
		timer := time.NewTimer(materializeDebounce)
		defer timer.Stop()
		for {
			select {
			case req := <-h.matq:
				for {
					due := req.at
					if last := time.Unix(0, h.lastActivateNs.Load()); last.After(due) {
						due = last
					}
					d := materializeDebounce - time.Since(due)
					if d <= 0 {
						break
					}
					timer.Reset(d)
					select {
					case <-timer.C:
					case <-h.matStop:
						return
					}
				}
				req.hs.materializeNow()
			case <-h.matStop:
				return
			}
		}
	}()
}

// stopMaterializer ends the background materializer and waits for it to
// exit (any in-progress build completes first — it holds only the
// engine's writer lock, never a hub lock).
func (h *Hub) stopMaterializer() {
	if h.matStop == nil {
		return
	}
	h.matOnce.Do(func() { close(h.matStop) })
	<-h.matDone
}

// queueMaterialize hands a freshly activated stream to the background
// materializer, non-blocking: on a full queue the first write pays the
// build instead, exactly as if there were no background task.
func (h *Hub) queueMaterialize(hs *StreamHandle) {
	if h.matq == nil {
		return
	}
	select {
	case h.matq <- matReq{hs: hs, at: time.Now()}:
	default:
	}
}

// residencyCandidate is one resident stream considered for eviction.
type residencyCandidate struct {
	hs           *StreamHandle
	touch, bytes int64
}

// residentByCold snapshots the resident streams (except exclude), coldest
// first by last touch, plus their summed approximate bytes.
func (h *Hub) residentByCold(exclude *StreamHandle) ([]residencyCandidate, int64) {
	h.mu.RLock()
	cands := make([]residencyCandidate, 0, len(h.streams))
	var total int64
	for _, hs := range h.streams {
		if hs == exclude || hs.stp.Load() == nil {
			continue
		}
		b := hs.residentBytes.Load()
		total += b
		cands = append(cands, residencyCandidate{hs, hs.lastTouch.Load(), b})
	}
	h.mu.RUnlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].touch < cands[j].touch })
	return cands, total
}

// EnforceResidency applies the residency budget once, synchronously:
// resident streams are hibernated, coldest first by last touch, until the
// resident count and summed approximate bytes fit the configured budget,
// and the number hibernated is returned. Under EvictClock (the default) a
// first pass skips protected streams — second-chance bit set (touched
// again since admission) or prefetched-and-unconsumed — counting a save
// per skip; if the protected set alone still overflows the budget, a
// second pass demotes every remaining stream's bit (the clock hand has
// swept full circle) and falls back to coldest-first LRU, still sparing
// in-flight prefetches. Streams that are busy (standing queries) or
// closing are skipped; other hibernation failures are joined into the
// returned error. The background hibernator calls this every
// ResidencySweep; callers may also invoke it directly (e.g. before a
// measurement that wants a settled hot tier). Without a budget it does
// nothing.
func (h *Hub) EnforceResidency() (int, error) {
	if !h.residencyBudgeted() {
		return 0, nil
	}
	maxN, maxB := h.p.opts.MaxResidentStreams, h.p.opts.MaxResidentBytes
	cands, totalB := h.residentByCold(nil)
	clock := h.evictionPolicy() == EvictClock
	var (
		n    int
		errs []error
	)
	over := func() bool {
		return (maxN > 0 && len(cands)-n > maxN) || (maxB > 0 && totalB > maxB)
	}
	gone := make(map[*StreamHandle]bool)
	evict := func(c residencyCandidate) {
		switch err := c.hs.Hibernate(); {
		case err == nil:
			n++
			totalB -= c.bytes
			gone[c.hs] = true
		case errors.Is(err, ErrStreamBusy) || errors.Is(err, ErrStreamClosed):
			// Busy or closing streams stay resident; try the next-coldest.
		default:
			errs = append(errs, fmt.Errorf("hibernating %q: %w", c.hs.name, err))
		}
	}
	for _, c := range cands {
		if !over() {
			break
		}
		if clock && (c.hs.refBit.Load() || c.hs.prefetched.Load()) {
			c.hs.secondChanceSaves.Add(1)
			obsResSecondChanceSaves.Inc()
			continue
		}
		evict(c)
	}
	if clock && over() {
		// The hand swept full circle without finding enough unprotected
		// victims: demote every survivor's bit (it must be re-earned by
		// another touch) and evict coldest-first, sparing only streams a
		// prefetch is mid-flight on.
		for _, c := range cands {
			if !gone[c.hs] {
				c.hs.refBit.Store(false)
			}
		}
		for _, c := range cands {
			if !over() {
				break
			}
			if gone[c.hs] || c.hs.prefetched.Load() {
				continue
			}
			evict(c)
		}
	}
	return n, errors.Join(errs...)
}

// errStaleEviction is the internal result of a policy eviction that was
// obsolete by the time it committed (stream touched since, or budget
// already met). Nobody awaits fire-and-forget ops, so it never escapes
// the package; it exists so a skipped eviction is distinguishable from a
// completed one in the serialized tryHibernateAsync path.
var errStaleEviction = errors.New("ksir: stale eviction")

// errStalePrefetch is its prefetch twin: a predictive activation that was
// no longer admissible (hub full of warmer streams) or no longer needed
// (demand got there first) when it drained. Fire-and-forget; never
// escapes the package.
var errStalePrefetch = errors.New("ksir: stale prefetch")

// evictionWarranted reports whether a policy eviction still serves its
// purpose, re-checked at eviction-commit time against the live resident
// set rather than the snapshot the eviction was decided on. Every such
// eviction was queued by makeRoom on behalf of one pending admission, so
// the tier must have headroom for that +1 stream: the eviction is
// warranted while the resident count is at or above the cap (the
// admission would push it over) or the byte budget is already exceeded.
func (h *Hub) evictionWarranted() bool {
	if h == nil || !h.residencyBudgeted() {
		return false
	}
	maxN, maxB := h.p.opts.MaxResidentStreams, h.p.opts.MaxResidentBytes
	h.mu.RLock()
	n, total := 0, int64(0)
	for _, s := range h.streams {
		if s.stp.Load() != nil {
			n++
			total += s.residentBytes.Load()
		}
	}
	h.mu.RUnlock()
	return (maxN > 0 && n >= maxN) || (maxB > 0 && total > maxB)
}

// makeRoom nudges the hub back under its residency budget before hs
// activates, by enqueueing fire-and-forget hibernate ops on the coldest
// other resident streams. It runs on hs's commit path, so it must never
// block on another stream's queue — two streams admitting concurrently
// could each be waiting behind the other's backlog (deadlock). Eviction
// is therefore best-effort TryLock + non-blocking send: a victim too busy
// to take the op is skipped, the budget transiently overshoots, and the
// background sweep settles it. Under EvictClock, protected victims —
// second-chance bit or pending prefetch — are likewise skipped (counted
// as saves) rather than demoted: admission alone never strips a hot
// stream's protection, so a burst of one-shot admissions churns through
// its own probationary streams and leaves the bit-carrying regulars
// alone. Only the full-circle sweep (EnforceResidency) demotes bits.
//
// A positive ceiling bounds the eviction to victims strictly colder than
// it — the prefetch guarantee that an admission never evicts a stream
// warmer than the one it admits.
func (h *Hub) makeRoom(hs *StreamHandle, ceiling int64) {
	if !h.residencyBudgeted() {
		return
	}
	maxN, maxB := h.p.opts.MaxResidentStreams, h.p.opts.MaxResidentBytes
	cands, totalB := h.residentByCold(hs)
	// The stream about to activate counts against the budget too.
	need := 0
	if maxN > 0 && len(cands)+1 > maxN {
		need = len(cands) + 1 - maxN
	}
	if need == 0 && !(maxB > 0 && totalB > maxB) {
		return
	}
	clock := h.evictionPolicy() == EvictClock
	queued := false
	for _, c := range cands {
		if need <= 0 && !(maxB > 0 && totalB > maxB) {
			break
		}
		if ceiling > 0 && c.touch >= ceiling {
			break // sorted coldest-first: only warmer victims remain
		}
		if clock && (c.hs.refBit.Load() || c.hs.prefetched.Load()) {
			c.hs.secondChanceSaves.Add(1)
			obsResSecondChanceSaves.Inc()
			continue
		}
		if c.hs.tryHibernateAsync(c.touch) {
			queued = true
			need--
			totalB -= c.bytes
		}
	}
	// Give the victims' writer goroutines a chance to drain the evictions
	// before this activation loads more state: on a single-core host the
	// activating writer and its caller otherwise monopolize the scheduler,
	// queued evictions go stale behind fresh touches, and the hot tier
	// balloons past the budget until the next blocking sweep.
	if queued {
		runtime.Gosched()
	}
}

// prefetchAdmissible re-validates a prefetch decision at commit time: the
// prefetch op may have sat behind a writer backlog, and activating now
// must still not displace anything warmer than the stream it admits.
// Admissible when the budget has room, or when at least one resident
// victim is strictly colder than the prefetched stream's own last touch
// and unprotected. Inadmissible prefetches quietly no-op — the demand
// operation they anticipated will activate on its own terms.
func (h *Hub) prefetchAdmissible(hs *StreamHandle) bool {
	if !h.residencyBudgeted() {
		return true
	}
	maxN, maxB := h.p.opts.MaxResidentStreams, h.p.opts.MaxResidentBytes
	cands, totalB := h.residentByCold(hs)
	if !(maxN > 0 && len(cands)+1 > maxN) && !(maxB > 0 && totalB > maxB) {
		return true
	}
	ceiling := hs.lastTouch.Load()
	clock := h.evictionPolicy() == EvictClock
	for _, c := range cands {
		if c.touch >= ceiling {
			return false // sorted coldest-first: only warmer victims remain
		}
		if clock && (c.hs.refBit.Load() || c.hs.prefetched.Load()) {
			continue
		}
		return true
	}
	return false
}

// Get returns the handle registered under name, or ErrUnknownStream.
func (h *Hub) Get(name string) (*StreamHandle, error) {
	h.mu.RLock()
	hs, ok := h.streams[name]
	h.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	return hs, nil
}

// List returns the registered stream names, sorted.
func (h *Hub) List() []string {
	h.mu.RLock()
	names := make([]string, 0, len(h.streams))
	for name := range h.streams {
		names = append(names, name)
	}
	h.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered streams.
func (h *Hub) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.streams)
}

// Close unregisters name and marks its handle closed: operations already
// in the handle's queue drain and complete with their real results,
// subsequent ones fail with ErrStreamClosed. It returns ErrUnknownStream
// for a name that was never registered (or already closed). On a durable
// hub, Close takes a final checkpoint after the drain and releases the
// stream's WAL — the durable state stays on disk and is recovered by the
// next OpenHub; a checkpoint failure is reported (wrapping ErrPersist) but
// the stream still closes.
func (h *Hub) Close(name string) error {
	h.mu.Lock()
	hs, ok := h.streams[name]
	delete(h.streams, name)
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	return hs.shutdown()
}

// CloseAll closes every registered stream — the graceful-shutdown sweep:
// on a durable hub each stream drains its queue and takes its final
// checkpoint, and every handle's Done channel closes so SSE consumers and
// other long-lived readers shut down. Errors are joined; streams close
// regardless.
func (h *Hub) CloseAll() error {
	h.stopHibernator()
	h.stopPrefetcher()
	h.stopMaterializer()
	var errs []error
	for _, name := range h.List() {
		if err := h.Close(name); err != nil && !errors.Is(err, ErrUnknownStream) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Writer-pipeline sizing. The queue bound is the backpressure mechanism: a
// producer enqueueing into a full queue blocks until the writer drains.
// The commit cap bounds how much work (and how many WAL bytes) one commit
// batch can accumulate before its callers see their results.
const (
	// writeQueueCap is the per-stream operation queue capacity.
	writeQueueCap = 256
	// maxCommitOps is the most queued operations one commit batch
	// coalesces (one engine application pass, one WAL append, one fsync).
	maxCommitOps = 128
	// materializeQueueCap bounds the background materializer's handoff
	// queue; a full queue drops the handoff (the first write builds the
	// buffer instead).
	materializeQueueCap = 64
	// materializeDebounce is how long the hub must go without any stream
	// activation before the background materializer runs a queued build:
	// long enough that churned-out streams are hibernated again (and
	// skipped) and that builds never contend with an activation storm,
	// short enough that a stream which settles in has its back buffer
	// ready before a typical first write.
	materializeDebounce = 100 * time.Millisecond
)

// minTouchGapNs is the smallest inter-touch gap fed into the recurrence
// EWMA: sub-millisecond gaps are one logical burst (a query fan-out, a
// batch of adds), not a recurrence period worth predicting.
const minTouchGapNs = int64(time.Millisecond)

// prefetchHintTTL is how long a standing-signal hint (StreamHandle.
// Prefetch) keeps a hibernated stream prefetch-eligible.
const prefetchHintTTL = 30 * time.Second

// opKind discriminates queued write operations.
type opKind uint8

const (
	opAdd opKind = iota
	opAddBatch
	opFlush
	opCheckpoint
	opSwapModel
	opSubscribe
	opUnsubscribe
	opClose
	opHibernate
	opActivate
)

// coalescable reports whether ops of this kind may share a commit batch.
// Only the ingest ops coalesce: they are the high-rate path and their
// durability records can share one WAL append. The others are barriers —
// each runs in its own batch, after everything enqueued before it has
// committed (so Checkpoint captures a fully drained prefix, and SwapModel
// never swaps an engine mid-batch).
func (k opKind) coalescable() bool {
	return k == opAdd || k == opAddBatch || k == opFlush
}

// needsResident reports whether an op of this kind must have the stream
// loaded in memory: these are the ops whose arrival transparently
// reactivates a hibernated stream. Hibernate itself does not (it is
// idempotent on a cold stream), Unsubscribe does not (a hibernated stream
// has no live subscriptions to remove), and Checkpoint does not (a
// hibernated stream's on-disk checkpoint is already current — reloading
// it just to rewrite identical state would defeat hibernation).
func (k opKind) needsResident() bool {
	switch k {
	case opHibernate, opUnsubscribe, opCheckpoint:
		return false
	}
	return true
}

// writeOp is one queued write operation: its inputs, and — once the
// writer goroutine closes done — its results. The completing channel close
// is the happens-before edge that lets the enqueueing goroutine read the
// result fields without further synchronization.
type writeOp struct {
	kind opKind

	// Inputs (by kind).
	post    Post              // opAdd
	posts   []Post            // opAddBatch
	now     int64             // opFlush
	model   *Model            // opSwapModel
	ctx     context.Context   // opSubscribe
	q       Query             // opSubscribe
	every   time.Duration     // opSubscribe
	handler func(Result)      // opSubscribe
	sopts   []SubscribeOption // opSubscribe
	sub     *Subscription     // opUnsubscribe in; opSubscribe out

	// evict marks an opHibernate queued fire-and-forget by the residency
	// policy (makeRoom) rather than requested by a caller. evictTouch is
	// the victim's lastTouch observed when the eviction was decided: the
	// op may sit behind a writer backlog, and by the time it commits the
	// stream may have been touched again or the hub may have settled
	// under budget — a stale eviction is a no-op (see commit).
	evict      bool
	evictTouch int64

	// prefetch marks an opActivate queued fire-and-forget by the
	// predictive prefetcher; its admissibility is re-validated at commit
	// time (see Hub.prefetchAdmissible) and nobody awaits its result.
	prefetch bool

	// Results.
	err      error
	accepted int          // opAddBatch
	ps       PersistStats // opCheckpoint
	stOut    *Stream      // opActivate: the resident stream
	// nrecs is how many WAL records this op contributed to its commit
	// batch; a batch-append failure is joined into the result of every
	// contributing op.
	nrecs int

	// done is closed by the committing goroutine when the op's results are
	// set; nil for fire-and-forget ops (tryHibernateAsync) nobody awaits.
	done chan struct{}

	// Tracing (all zero on untraced ops — the *Context methods populate tr
	// from the caller's context). The writer goroutine appends child spans
	// to tr only between the queue receive and the done-channel close, and
	// the producer touches it only before the send and after the wake: the
	// same happens-before edges that protect the result fields make the
	// cross-goroutine span appends race-free without a lock.
	tr         *trace.Op
	enqueued   time.Time // queue entry (zero on the serialized path)
	applyStart time.Time // this op's apply slice of the commit pass
	applyDur   time.Duration
	committed  time.Time // stamped by commit just before done closes
}

// PipelineStats reports a stream's writer-pipeline counters (zero-valued
// on a raw Stream, and with QueueDepth and Fsyncs pinned to 0 under
// WithSerializedWriter and on in-memory hubs respectively).
type PipelineStats struct {
	// QueueDepth is the number of write operations waiting in the
	// handle's queue at the instant of the Stats call (0 on a
	// serialized-writer hub, which has no queue).
	QueueDepth int
	// Ops counts write operations committed over the handle's lifetime.
	Ops int64
	// Batches counts commit batches: each is one engine application pass
	// and, on a durable hub, at most one WAL append with one shared
	// fsync. Ops/Batches is the mean commit-batch size — the coalescing
	// factor producers actually achieved.
	Batches int64
	// Fsyncs counts WAL fsyncs issued for the stream (0 on in-memory
	// hubs). Fsyncs/Ops is the per-operation durability cost group commit
	// amortizes: 1.0 matches the serialized writer at FsyncAlways, and it
	// falls toward 1/MeanBatchSize as concurrent producers coalesce.
	Fsyncs int64
}

// MeanBatchSize returns the average number of operations per commit batch
// (0 before the first commit).
func (p PipelineStats) MeanBatchSize() float64 {
	if p.Batches == 0 {
		return 0
	}
	return float64(p.Ops) / float64(p.Batches)
}

// FsyncsPerOp returns the average number of WAL fsyncs per committed
// operation (0 before the first commit, and on in-memory hubs).
func (p PipelineStats) FsyncsPerOp() float64 {
	if p.Ops == 0 {
		return 0
	}
	return float64(p.Fsyncs) / float64(p.Ops)
}

// StreamHandle is a Hub-managed stream. Write operations are enqueued onto
// a bounded per-stream queue and executed by one writer goroutine (the
// single-writer ingest pipeline), so any number of goroutines may call
// them; queries and stats bypass the pipeline entirely and read the
// published snapshot, as on a raw Stream.
//
// The writer coalesces adjacent queued ingest operations (Add, AddBatch,
// Flush) into a commit batch: one pass of engine application — crossing at
// most one snapshot publish when no standing queries are registered — and,
// on a durable hub, one WAL append whose fsync (under FsyncAlways) is
// shared by the whole batch. Coalescing is invisible in the results: every
// operation completes with exactly the outcome the serialized path would
// have produced — the same accepted prefixes, the same typed sentinels —
// because acceptance decisions are made per operation, in queue order, by
// the same code. Checkpoint, SwapModel, Subscribe and Unsubscribe are
// commit barriers: each executes alone, after every operation enqueued
// before it has committed.
//
// Backpressure: a full queue blocks producers until the writer drains.
// PipelineStats (via Stats) reports the live queue depth and the realized
// coalescing.
type StreamHandle struct {
	name string
	hub  *Hub
	// stp is the resident stream, nil while hibernated. Only the commit
	// path stores it (residency transitions are commit barriers); queries
	// Load it and pin whatever snapshot they find — a stream hibernated
	// out from under an in-flight query stays reachable (and thus alive)
	// through the query's own pointer until it finishes.
	stp atomic.Pointer[Stream]
	// model, opts and cfg are everything needed to rebuild the stream
	// from its durable state; model is swappable (in-memory hubs only),
	// opts/cfg are immutable after registration.
	model atomic.Pointer[Model]
	opts  Options
	cfg   streamConfig

	// qmu serializes enqueues with shutdown: the closed flag and the
	// channel send are checked-and-done under it, so no operation can
	// slip into the queue after the close op that ends the writer loop.
	qmu    sync.Mutex
	ops    chan *writeOp
	closed atomic.Bool   // fail-fast flag; reads must never contend with writers
	done   chan struct{} // closed by Hub.Close; see Done

	// commitWindow is the opt-in group-commit wait (see
	// PersistOptions.CommitWindow); 0 on in-memory hubs.
	commitWindow time.Duration

	// Residency accounting. lastTouch orders eviction (stored by every
	// operation except Hibernate itself — an eviction must not refresh its
	// victim's warmth); evictPending dedupes policy evictions (at most one
	// queued per stream — repeated makeRoom passes over the same coldest
	// candidate must not pile identical ops into its queue); lastStats
	// preserves the final counters of a hibernated stream so Stats never
	// has to reload one.
	lastTouch        atomic.Int64
	evictPending     atomic.Bool
	hibernations     atomic.Int64
	activations      atomic.Int64
	lastActivationNs atomic.Int64
	residentBytes    atomic.Int64
	lastStats        atomic.Pointer[StreamStats]

	// Clock-eviction state (EvictClock). refBit is the second-chance bit:
	// set by every touch while resident, cleared at activation (a fresh
	// admission is probationary until touched again) and by the
	// full-circle demotion pass of EnforceResidency. An eviction pass
	// skips bit-carrying streams, so a one-shot scan over cold streams —
	// each admitted probationary, none touched twice — churns through its
	// own admissions and leaves the established hot set resident.
	refBit atomic.Bool

	// Prefetch state. prefetched is set when the prefetcher queues an
	// activation (doubling as the one-pending-per-stream dedupe) and
	// consumed by the first demand touch while resident (a hit) or by
	// hibernation / a late arrival (a miss); while set it also protects
	// the stream from eviction, so a prefetch is never undone before the
	// touch it anticipated. prefetchHintNs is the expiry of a standing
	// hint (Prefetch); touchGapEWMA tracks the stream's inter-touch
	// recurrence for the predictive sweep.
	prefetched     atomic.Bool
	prefetchHintNs atomic.Int64
	touchGapEWMA   atomic.Int64

	// Residency observability counters (see ResidencyStats).
	prefetchActivations  atomic.Int64
	prefetchHits         atomic.Int64
	prefetchMisses       atomic.Int64
	ghostHits            atomic.Int64
	secondChanceSaves    atomic.Int64
	lazyMaterializations atomic.Int64

	// serialized selects the pre-pipeline writer path: ops execute
	// synchronously under smu, one commit batch each (the Hub's
	// WithSerializedWriter / PersistOptions.SerializedWriter baseline).
	serialized bool
	smu        sync.Mutex

	// pers is the stream's durability state (nil on an in-memory hub),
	// mutated only by the writer goroutine (or under smu when
	// serialized). The commit path is the WAL append point: every
	// accepted write is logged before its operation completes.
	pers *streamPersist

	// recs is the writer-owned scratch buffer of WAL records for the
	// current commit batch.
	recs []persist.Record

	// inflight counts producers currently inside do() on the pipelined
	// path — enqueued or about to be. The writer reads it as herd
	// evidence when deciding whether to wait a scheduling pass for a
	// fuller commit batch.
	inflight atomic.Int64

	statOps     atomic.Int64
	statBatches atomic.Int64
}

// Name returns the name the handle is registered under.
func (hs *StreamHandle) Name() string { return hs.name }

// Stream returns the underlying stream for read-only use, or nil while
// the stream is hibernated. Callers must not invoke its write methods
// directly — that would bypass the handle's writer pipeline. Prefer the
// handle's residency-independent accessors (Options, Model, Stats),
// which work whether or not the stream is loaded.
func (hs *StreamHandle) Stream() *Stream { return hs.stp.Load() }

// Options returns the stream's resolved options, without touching its
// residency.
func (hs *StreamHandle) Options() Options { return hs.opts }

// Model returns the model the stream runs against, without touching its
// residency.
func (hs *StreamHandle) Model() *Model { return hs.model.Load() }

// Resident reports whether the stream is currently loaded in memory.
// Operations work either way — the first touching one reactivates a
// hibernated stream.
func (hs *StreamHandle) Resident() bool { return hs.stp.Load() != nil }

// touch refreshes the handle's eviction clock; it is also where the
// residency machinery observes demand. The inter-touch gap feeds the
// recurrence EWMA the prefetcher predicts from (α=¼; sub-millisecond
// gaps are one logical burst and are not folded in), a touch on a
// resident stream earns the second-chance bit, and the first demand
// touch on a prefetched stream consumes the prefetch as a hit.
func (hs *StreamHandle) touch() {
	now := time.Now().UnixNano()
	prev := hs.lastTouch.Swap(now)
	if gap := now - prev; prev > 0 && gap >= minTouchGapNs {
		// Lost updates between racing touches are fine: the EWMA is a
		// prediction signal, not an exact counter.
		if old := hs.touchGapEWMA.Load(); old == 0 {
			hs.touchGapEWMA.Store(gap)
		} else {
			hs.touchGapEWMA.Store(old + (gap-old)/4)
		}
	}
	if hs.stp.Load() != nil {
		hs.refBit.Store(true)
		if hs.prefetched.CompareAndSwap(true, false) {
			hs.prefetchHits.Add(1)
			obsResPrefetchHits.Inc()
		}
	}
}

// prefetchDue reports whether a hibernated stream should be reactivated
// by this sweep: a standing hint is live, or the predicted next touch
// (last touch + recurrence EWMA) falls within ±look of now. A prediction
// already more than look stale means the recurrence broke — no prefetch
// until the pattern re-establishes.
func (hs *StreamHandle) prefetchDue(now, look int64) bool {
	if hint := hs.prefetchHintNs.Load(); hint > 0 {
		if now <= hint {
			return true
		}
		hs.prefetchHintNs.CompareAndSwap(hint, 0) // expired: drop it
	}
	ewma := hs.touchGapEWMA.Load()
	if ewma <= 0 {
		return false
	}
	next := hs.lastTouch.Load() + ewma
	return next-look <= now && now <= next+look
}

// Prefetch records a standing signal that this stream is expected to be
// needed shortly — a reconnecting SubscribeResume cursor, a query
// pattern, an application-level hint — keeping it prefetch-eligible for
// the next ~30s even without EWMA evidence. Advisory and non-blocking;
// it does nothing unless the hub runs a predictive prefetcher
// (PersistOptions.PrefetchSweep) and never counts as a touch.
func (hs *StreamHandle) Prefetch() {
	hs.prefetchHintNs.Store(time.Now().Add(prefetchHintTTL).UnixNano())
}

// tryActivateAsync enqueues a fire-and-forget prefetch activation without
// ever blocking, mirroring tryHibernateAsync: the prefetched flag dedupes
// (one pending prefetch per stream), the enqueue is TryLock + non-blocking
// send, and the committed op re-validates admissibility (the hub may have
// filled up, or a demand op may have activated the stream first).
func (hs *StreamHandle) tryActivateAsync() bool {
	if hs.serialized {
		if !hs.smu.TryLock() {
			return false
		}
		defer hs.smu.Unlock()
		if hs.closed.Load() || hs.stp.Load() != nil {
			return false
		}
		if !hs.prefetched.CompareAndSwap(false, true) {
			return false
		}
		op := &writeOp{kind: opActivate, prefetch: true}
		hs.commit([]*writeOp{op})
		if op.err != nil {
			hs.prefetched.Store(false)
			return false
		}
		return true
	}
	if !hs.prefetched.CompareAndSwap(false, true) {
		return true // one already pending — that is this sweep's progress
	}
	queued := false
	defer func() {
		if !queued {
			hs.prefetched.Store(false)
		}
	}()
	if !hs.qmu.TryLock() {
		return false
	}
	defer hs.qmu.Unlock()
	if hs.closed.Load() || hs.stp.Load() != nil {
		return false
	}
	select {
	case hs.ops <- &writeOp{kind: opActivate, prefetch: true}:
		queued = true
		return true
	default:
		return false // queue full: demand is already heading there
	}
}

// materializeNow runs on the hub's background materializer goroutine:
// build the freshly activated stream's deferred back buffer before the
// first write has to. A stream that hibernated again in the meantime is
// skipped; a write racing the build benignly loses the engine-lock race
// and finds the buffer ready.
func (hs *StreamHandle) materializeNow() {
	st := hs.stp.Load()
	if st == nil {
		return
	}
	did, _, err := st.materializeBack()
	if err != nil {
		hs.hub.log().Warn("background back-buffer materialization failed",
			"stream", hs.name, "error", err)
		return
	}
	if did {
		hs.lazyMaterializations.Add(1)
		obsResLazyMaterialize.Inc()
	}
}

// do executes op through the writer pipeline (or inline under smu on a
// serialized-writer hub) and returns it with its result fields set.
func (hs *StreamHandle) do(op *writeOp) *writeOp {
	if op.kind != opHibernate {
		hs.touch()
	}
	if hs.serialized {
		hs.smu.Lock()
		if hs.closed.Load() {
			hs.smu.Unlock()
			op.err = fmt.Errorf("%w: %q", ErrStreamClosed, hs.name)
			return op
		}
		hs.commit([]*writeOp{op})
		hs.smu.Unlock()
		return op
	}
	op.done = make(chan struct{})
	hs.inflight.Add(1)
	defer hs.inflight.Add(-1)
	if op.tr != nil {
		op.enqueued = time.Now()
	}
	hs.qmu.Lock()
	if hs.closed.Load() {
		hs.qmu.Unlock()
		op.err = fmt.Errorf("%w: %q", ErrStreamClosed, hs.name)
		return op
	}
	hs.ops <- op // blocks when the queue is full: backpressure
	hs.qmu.Unlock()
	<-op.done
	if op.tr != nil && !op.committed.IsZero() {
		// The gap between the writer finishing the op and this producer
		// waking with the result — scheduler latency the aggregate commit
		// histogram can't see per op.
		op.tr.Child("future.completion", op.committed, time.Since(op.committed))
	}
	return op
}

// writerLoop is the stream's single writer: it drains the op queue,
// coalescing adjacent ingest ops into commit batches, until the close op
// arrives. Every op that entered the queue is completed — the close path
// enqueues its op under qmu after setting the closed flag, so the loop
// never abandons a waiting caller.
func (hs *StreamHandle) writerLoop() {
	batch := make([]*writeOp, 0, maxCommitOps)
	var carry *writeOp
	for {
		var op *writeOp
		if carry != nil {
			op, carry = carry, nil
		} else {
			op = <-hs.ops
		}
		if op.kind == opClose {
			if hs.pers != nil {
				op.err = hs.pers.finalize(hs.stp.Load())
			}
			close(op.done)
			return
		}
		batch = append(batch[:0], op)
		if op.kind.coalescable() {
			// Gather the batch in passes: drain the queue, and while the
			// in-flight counter shows producers that have not enqueued
			// yet — typically the herd just woken by the previous
			// commit's completions — yield once to let them, so the
			// batch (and its shared fsync) covers the whole herd. The
			// writer otherwise outruns producer wake-up and group commit
			// degenerates into batches of one (pronounced at
			// GOMAXPROCS=1, where the writer is never preempted between
			// commits). A lone producer never trips the yield: its op is
			// the whole in-flight population, preserving the serialized
			// path's latency.
			for tries := 0; len(batch) < maxCommitOps && carry == nil; {
				var next *writeOp
				select {
				case next = <-hs.ops:
				default:
				}
				if next != nil {
					if !next.kind.coalescable() {
						carry = next // barrier op: runs alone, next iteration
						break
					}
					batch = append(batch, next)
					continue
				}
				if tries >= 2 || int64(len(batch)) >= hs.inflight.Load() {
					break
				}
				tries++
				runtime.Gosched()
			}
			if w := hs.commitWindow; w > 0 && carry == nil && len(batch) < maxCommitOps {
				// Opt-in group-commit window: hold the batch open up to w
				// for more ingest ops before paying its WAL append (and,
				// under FsyncAlways, its fsync) — the coalescing a lone
				// open-loop producer never gets from the in-flight
				// heuristic above. A barrier op ends the window early; it
				// must run alone, after this batch commits.
				obsPipeWindowWaits.Inc()
				timer := time.NewTimer(w)
				for len(batch) < maxCommitOps {
					var next *writeOp
					select {
					case next = <-hs.ops:
					case <-timer.C:
					}
					if next == nil {
						break // window elapsed
					}
					if !next.kind.coalescable() {
						carry = next
						break
					}
					batch = append(batch, next)
				}
				timer.Stop()
			}
		}
		hs.commit(batch)
		// Drop the completed ops' pointers: the reused backing array
		// would otherwise pin a big batch's posts (and handlers, and
		// contexts) across an arbitrarily long run of small batches.
		clear(batch)
	}
}

// commit applies one batch of operations and makes it durable: an apply
// pass in queue order (snapshot publication deferred across the batch, so
// it crosses at most one publish when no standing queries are registered),
// then — on a durable hub — one WAL append covering every accepted
// operation, with one fsync shared by the batch, then the auto-checkpoint
// trigger, and finally the completion of every caller's op.
//
// Atomicity is per operation, not per batch: each op's acceptance and
// result are decided individually (batch[i] failing never rolls back
// batch[i-1]), and a WAL-append failure is joined into the result of
// exactly the ops whose records were in the failed append — their effects
// are in memory but not durable, the same contract the serialized path
// reports per op.
func (hs *StreamHandle) commit(batch []*writeOp) {
	commitStart := time.Now()
	batchSeq := hs.statBatches.Load() + 1
	defer func() { observeCommit(len(batch), time.Since(commitStart)) }()
	// actStart/actDur capture a reactivation performed on behalf of this
	// batch, attributed to every traced op that rode it; actPh carries its
	// phase breakdown for the stream.activate child spans.
	var actStart time.Time
	var actDur time.Duration
	var actPh *activationPhases
	st := hs.stp.Load()
	if st == nil {
		// Hibernated. Reactivate if any op in the batch needs the stream
		// in memory; an activation failure (corrupt checkpoint, I/O error)
		// fails the whole batch — the stream stays hibernated and the
		// next touch retries.
		needs := false
		for _, op := range batch {
			if op.kind.needsResident() {
				needs = true
				break
			}
		}
		// An opActivate is a commit barrier, so a prefetch is always alone
		// in its batch: re-validate its admission before paying the load
		// (see prefetchAdmissible). A stale prefetch quietly no-ops.
		prefetch := len(batch) == 1 && batch[0].prefetch
		if prefetch && !hs.hub.prefetchAdmissible(hs) {
			hs.prefetched.Store(false)
			batch[0].err = errStalePrefetch
			if batch[0].done != nil {
				close(batch[0].done)
			}
			return
		}
		if needs {
			var err error
			actStart = time.Now()
			if st, actPh, err = hs.activate(prefetch); err != nil {
				err = fmt.Errorf("reactivating %q: %w", hs.name, err)
				for _, op := range batch {
					op.err = err
					if op.prefetch {
						hs.prefetched.Store(false)
					}
					if op.done != nil {
						close(op.done)
					}
				}
				return
			}
			actDur = time.Since(actStart)
		}
	}
	if hs.pers != nil {
		for _, op := range batch {
			if op.kind.coalescable() {
				// Any ingest attempt can move the stream past its
				// checkpoint (even a rejected duplicate advances the
				// window first), so the checkpoint is stale from here
				// until the next one is taken.
				hs.pers.ckptCurrent = false
				break
			}
		}
	}
	recs := hs.recs[:0]
	// Bracket the apply pass when it can span more than one engine
	// application (several ops, or one multi-post batch). A nil st here
	// means the whole batch is residency-independent ops (hibernate on a
	// cold stream, checkpoint, unsubscribe) — never ingest.
	bracket := st != nil && (len(batch) > 1 || (batch[0].kind == opAddBatch && len(batch[0].posts) > 1))
	if bracket {
		st.beginApply()
	}
	for _, op := range batch {
		if op.tr != nil {
			op.applyStart = time.Now()
		}
		switch op.kind {
		case opAdd:
			op.err = st.Add(op.post)
			if op.err == nil && hs.pers != nil {
				recs = append(recs, postRecord(op.post))
				op.nrecs = 1
			}
		case opAddBatch:
			op.accepted, op.err = st.AddBatch(op.posts)
			if hs.pers != nil {
				for _, p := range op.posts[:op.accepted] {
					recs = append(recs, postRecord(p))
				}
				op.nrecs = op.accepted
			}
		case opFlush:
			op.err = st.Flush(op.now)
			if op.err == nil && hs.pers != nil {
				recs = append(recs, persist.Record{Kind: persist.KindFlush, FlushNow: op.now})
				op.nrecs = 1
			}
		case opSubscribe:
			op.sub, op.err = st.Subscribe(op.ctx, op.q, op.every, op.handler, op.sopts...)
		case opUnsubscribe:
			if st != nil { // a hibernated stream has no live subscriptions
				st.Unsubscribe(op.sub)
			}
		case opSwapModel:
			if hs.pers != nil {
				op.err = fmt.Errorf("%w: SwapModel on persisted stream %q (re-open the hub with the new model)", ErrPersist, hs.name)
			} else if op.err = st.SwapModel(op.model); op.err == nil {
				hs.model.Store(op.model)
			}
		case opCheckpoint:
			if hs.pers == nil {
				op.err = fmt.Errorf("%w: stream %q", ErrPersistDisabled, hs.name)
			} else if st == nil {
				// Hibernated: the on-disk checkpoint already covers every
				// durable op — report the counters without reloading.
				op.ps = hs.pers.stats()
			} else if op.err = hs.pers.checkpoint(st); op.err == nil {
				op.ps = hs.pers.stats()
			}
		case opHibernate:
			// A policy eviction re-validates at commit time: it was queued
			// fire-and-forget and may have drained long after the admission
			// decision behind it. If the stream has been touched since, or
			// the hub is no longer over budget (a blocking EnforceResidency
			// pass may have already trimmed the tier), acting on the stale
			// decision would hibernate a warm stream and drag the hot tier
			// below the budget — so the eviction quietly no-ops instead.
			if op.evict {
				hs.evictPending.Store(false)
			}
			if op.evict && (hs.lastTouch.Load() != op.evictTouch || !hs.hub.evictionWarranted()) {
				op.err = errStaleEviction
				obsResStaleEvictions.Inc()
			} else if op.err = hs.hibernate(st); op.err == nil {
				if op.evict {
					obsResEvictions.Inc()
				}
				st = nil // barrier: alone in its batch, nothing else uses it
			}
		case opActivate:
			if op.prefetch && actDur == 0 {
				// The stream was already resident when the prefetch
				// drained: demand beat the prediction there. Count the
				// wasted prefetch and release its protection.
				if hs.prefetched.CompareAndSwap(true, false) {
					hs.prefetchMisses.Add(1)
					obsResPrefetchMisses.Inc()
				}
			}
			op.stOut = st
		}
		if op.tr != nil {
			op.applyDur = time.Since(op.applyStart)
		}
	}
	if bracket {
		st.endApply()
	}

	// A write in this batch may have been the one that paid a deferred
	// back-buffer build (lazy restore, first post-activation ingest);
	// collect its timing for the span and the lazy-materialize counter.
	var matStart time.Time
	var matDur time.Duration
	if st != nil {
		if matStart, matDur = st.takeMaterialize(); matDur > 0 {
			hs.lazyMaterializations.Add(1)
			obsResLazyMaterialize.Inc()
		}
	}

	var walT persist.BatchTimings
	if hs.pers != nil && len(recs) > 0 {
		// One append, one shared fsync, for the whole batch. The Bucket
		// field is diagnostic (recovery keys off Seq alone); records are
		// stamped with the bucket published at commit time.
		bucket := st.Stats().Bucket
		for i := range recs {
			recs[i].Bucket = bucket
		}
		if err := hs.pers.appendBatchTimed(recs, &walT); err != nil {
			for _, op := range batch {
				if op.nrecs > 0 {
					op.err = errors.Join(op.err, err)
				}
			}
		} else if err := hs.pers.maybeCheckpoint(st); err != nil {
			// The trigger runs once per committed batch (never with
			// applied-but-unlogged posts); a failure surfaces on the last
			// op that contributed records.
			for i := len(batch) - 1; i >= 0; i-- {
				if batch[i].nrecs > 0 {
					batch[i].err = errors.Join(batch[i].err, err)
					break
				}
			}
		}
	}

	// Recycle the record scratch with its payload pointers (post text,
	// refs) dropped, so the buffer's capacity survives but a big batch's
	// posts do not outlive their commit.
	clear(recs)
	hs.recs = recs[:0]

	if st != nil {
		hs.residentBytes.Store(st.approxResidentBytes())
	}
	hs.statOps.Add(int64(len(batch)))
	hs.statBatches.Add(1)

	// Span attribution for traced ops. Each traced op gets its own
	// queue-wait and apply slice; the commit-batch span (and the WAL
	// append/fsync spans under it) is shared by the whole batch, with
	// batch.seq/batch.ops linking the coalesced ops' traces together.
	for _, op := range batch {
		t := op.tr
		if t == nil {
			continue
		}
		t.SetStream(hs.name)
		if !op.enqueued.IsZero() {
			t.Child("queue.wait", op.enqueued, commitStart.Sub(op.enqueued))
		}
		cb := t.Child("commit.batch", commitStart, time.Since(commitStart),
			trace.Int("batch.ops", int64(len(batch))),
			trace.Int("batch.seq", batchSeq))
		if actDur > 0 {
			act := t.ChildOf(cb, "stream.activate", actStart, actDur)
			if ph := actPh; ph != nil {
				if ph.ckptDur > 0 {
					t.ChildOf(act, "checkpoint.load", ph.ckptStart, ph.ckptDur)
				}
				if ph.restoreDur > 0 {
					t.ChildOf(act, "state.restore", ph.restoreStart, ph.restoreDur)
				}
				if ph.replayDur > 0 {
					t.ChildOf(act, "wal.replay", ph.replayStart, ph.replayDur)
				}
				if ph.matDur > 0 {
					t.ChildOf(act, "backbuffer.materialize", ph.matStart, ph.matDur)
				}
			}
		}
		if !op.applyStart.IsZero() {
			t.ChildOf(cb, "engine.apply", op.applyStart, op.applyDur)
		}
		if matDur > 0 {
			t.ChildOf(cb, "backbuffer.materialize", matStart, matDur)
		}
		if walT.AppendDur > 0 && op.nrecs > 0 {
			t.ChildOf(cb, "wal.append", walT.AppendStart, walT.AppendDur,
				trace.Int("wal.records", int64(op.nrecs)))
			if walT.FsyncDur > 0 {
				t.ChildOf(cb, "wal.fsync", walT.FsyncStart, walT.FsyncDur)
			}
		}
		op.committed = time.Now()
	}

	for _, op := range batch {
		if op.done != nil {
			close(op.done)
		}
	}
}

// hibernate executes the hot→cold transition on the commit path: the
// durable state is made current (checkpoint, unless already current), the
// WAL is released, and the in-memory stream is dropped. In-flight queries
// that pinned the stream keep their snapshot — its memory is reclaimed
// when the last of them finishes. A checkpoint failure aborts the
// transition (the stream stays resident rather than lose state).
func (hs *StreamHandle) hibernate(st *Stream) error {
	if st == nil {
		return nil // already hibernated: idempotent
	}
	if hs.pers == nil {
		return fmt.Errorf("%w: cannot hibernate in-memory stream %q", ErrPersistDisabled, hs.name)
	}
	if n := st.Subscriptions(); n > 0 {
		// Subscriptions live in memory only; releasing the stream would
		// silently drop them.
		return fmt.Errorf("%w: stream %q has %d standing queries", ErrStreamBusy, hs.name, n)
	}
	if !hs.pers.ckptCurrent {
		if err := hs.pers.checkpoint(st); err != nil {
			return err
		}
	}
	err := hs.pers.releaseWAL()
	// Publish the final counters before the stream pointer goes nil, so a
	// Stats racing the transition never sees a hibernated stream without
	// its last-known numbers.
	s := st.Stats()
	hs.lastStats.Store(&s)
	hs.stp.Store(nil)
	hs.residentBytes.Store(0)
	hs.hibernations.Add(1)
	obsResHibernations.Inc()
	hs.hub.ghostRecord(hs.name)
	if hs.prefetched.CompareAndSwap(true, false) {
		// Prefetched but never demand-touched: the prediction overshot.
		hs.prefetchMisses.Add(1)
		obsResPrefetchMisses.Inc()
	}
	return err
}

// activate executes the cold→hot transition on the commit path: evict
// colder streams first when a budget is configured (best-effort, see
// Hub.makeRoom), then load checkpoint + WAL tail back into memory — the
// front buffer only, by default; the deferred back buffer is handed to
// the hub's background materializer so neither the activation nor the
// first write pays for it. A prefetch activation bounds its evictions to
// victims colder than this stream's own last touch, and the returned
// phase breakdown feeds the stream.activate child spans.
func (hs *StreamHandle) activate(prefetch bool) (*Stream, *activationPhases, error) {
	if hs.pers == nil {
		return nil, nil, fmt.Errorf("%w: stream %q has no durable state to reactivate", ErrPersistDisabled, hs.name)
	}
	start := time.Now()
	ceiling := int64(0)
	if prefetch {
		ceiling = hs.lastTouch.Load()
	}
	hs.hub.makeRoom(hs, ceiling)
	ph := &activationPhases{}
	st, err := hs.pers.resume(hs.model.Load(), hs.opts, hs.cfg, ph)
	if err != nil {
		return nil, nil, err
	}
	// A non-empty WAL tail replays through the ingest path, whose first
	// write materializes the back buffer — that build belongs to this
	// activation's breakdown, not to a later commit batch.
	if ph.matStart, ph.matDur = st.takeMaterialize(); ph.matDur > 0 {
		hs.lazyMaterializations.Add(1)
		obsResLazyMaterialize.Inc()
	}
	// Admission state, settled before the stream publishes so a racing
	// touch can only add protection, never lose it: a ghost hit (evicted
	// recently, wanted again) re-admits protected, everything else starts
	// probationary.
	if hs.hub.ghostTake(hs.name) {
		hs.ghostHits.Add(1)
		obsResGhostHits.Inc()
		hs.refBit.Store(true)
	} else {
		hs.refBit.Store(false)
	}
	elapsed := time.Since(start)
	hs.hub.lastActivateNs.Store(time.Now().UnixNano())
	hs.stp.Store(st)
	hs.residentBytes.Store(st.approxResidentBytes())
	hs.activations.Add(1)
	hs.lastActivationNs.Store(elapsed.Nanoseconds())
	obsResActivations.Inc()
	obsResActivationDuration.ObserveDuration(elapsed)
	if prefetch {
		hs.prefetchActivations.Add(1)
		obsResPrefetchActivations.Inc()
	}
	hs.hub.queueMaterialize(hs)
	return st, ph, nil
}

// tryHibernateAsync enqueues a fire-and-forget hibernate op without ever
// blocking: TryLock on the enqueue path, non-blocking channel send. False
// means the stream was too busy to take the op right now — admission
// control treats that as "not cold after all" and moves on. touch is the
// lastTouch value the eviction decision was based on; the committed op
// no-ops if the stream has been touched since (or the hub has meanwhile
// settled under budget), so a straggling eviction behind a writer backlog
// can never hibernate a re-warmed stream.
func (hs *StreamHandle) tryHibernateAsync(touch int64) bool {
	if hs.serialized {
		if !hs.smu.TryLock() {
			return false
		}
		defer hs.smu.Unlock()
		if hs.closed.Load() || hs.stp.Load() == nil {
			return false
		}
		op := &writeOp{kind: opHibernate, evict: true, evictTouch: touch}
		hs.commit([]*writeOp{op})
		return op.err == nil
	}
	// One pending eviction per stream: the coldest candidate tends to stay
	// coldest until its eviction drains, so back-to-back admissions would
	// otherwise pile identical ops into its queue. A pending eviction
	// already frees this slot; report it as progress without re-queueing.
	if !hs.evictPending.CompareAndSwap(false, true) {
		return true
	}
	queued := false
	defer func() {
		if !queued {
			hs.evictPending.Store(false)
		}
	}()
	if !hs.qmu.TryLock() {
		return false
	}
	defer hs.qmu.Unlock()
	if hs.closed.Load() || hs.stp.Load() == nil {
		return false
	}
	select {
	case hs.ops <- &writeOp{kind: opHibernate, evict: true, evictTouch: touch}:
		queued = true
		return true
	default:
		return false // queue full: the stream is anything but cold
	}
}

// ensureResident reactivates a hibernated stream through the writer
// pipeline and returns the resident stream. The activate op is a commit
// barrier, so exactly one activation runs no matter how many readers race
// it; the returned pointer stays valid for this caller even if the stream
// hibernates again immediately (snapshot pinning, see stp). A trace op on
// ctx receives the activation's pipeline spans (queue wait, commit batch,
// stream.activate).
func (hs *StreamHandle) ensureResident(ctx context.Context) (*Stream, error) {
	op := hs.do(&writeOp{kind: opActivate, tr: trace.FromContext(ctx)})
	if op.err != nil {
		return nil, op.err
	}
	return op.stOut, nil
}

// postRecord builds the WAL record of one accepted post (Seq and Bucket
// are stamped at append time).
func postRecord(p Post) persist.Record {
	return persist.Record{
		Kind: persist.KindPost,
		Post: persist.PostRec{ID: p.ID, Time: p.Time, Text: p.Text, Refs: p.Refs},
	}
}

// shutdown ends the handle: the closed flag fences new operations, the
// queued ones drain with their real results, and the writer goroutine
// finalizes persistence (final checkpoint + WAL release) and exits. Called
// once, by Hub.Close, after the handle left the registry.
func (hs *StreamHandle) shutdown() error {
	if hs.serialized {
		hs.smu.Lock()
		hs.closed.Store(true)
		var err error
		if hs.pers != nil {
			err = hs.pers.finalize(hs.stp.Load())
		}
		hs.smu.Unlock()
		close(hs.done)
		return err
	}
	op := &writeOp{kind: opClose, done: make(chan struct{})}
	hs.qmu.Lock()
	hs.closed.Store(true)
	hs.ops <- op
	hs.qmu.Unlock()
	<-op.done
	close(hs.done)
	return op.err
}

// Add appends one post through the writer pipeline. On a durable hub the
// accepted post is WAL-logged (sharing its commit batch's fsync) before
// Add returns; a logging failure is reported (wrapping ErrPersist) with
// the post already applied in memory.
func (hs *StreamHandle) Add(p Post) error {
	return hs.AddContext(context.Background(), p)
}

// AddContext is Add with trace propagation: when ctx carries a trace op
// (internal/trace, attached by the HTTP middleware or an embedding
// caller), the operation's pipeline breakdown — queue wait, commit batch,
// engine apply, WAL append, fsync, future completion — is recorded as
// child spans on it. The context does not cancel the write: once
// enqueued, an operation always commits.
func (hs *StreamHandle) AddContext(ctx context.Context, p Post) error {
	return hs.do(&writeOp{kind: opAdd, post: p, tr: trace.FromContext(ctx)}).err
}

// AddBatch appends posts in order, stopping at the first rejected post and
// reporting how many were accepted. On a durable hub the accepted prefix
// is WAL-logged even when a later post is rejected; if both an ingest
// rejection and a logging failure occur, the returned error joins them
// (errors.Is matches each), and on a logging failure the accepted prefix
// is in memory but not durable.
func (hs *StreamHandle) AddBatch(posts []Post) (accepted int, err error) {
	return hs.AddBatchContext(context.Background(), posts)
}

// AddBatchContext is AddBatch with trace propagation (see AddContext).
func (hs *StreamHandle) AddBatchContext(ctx context.Context, posts []Post) (accepted int, err error) {
	op := hs.do(&writeOp{kind: opAddBatch, posts: posts, tr: trace.FromContext(ctx)})
	return op.accepted, op.err
}

// Flush ingests everything buffered up to stream time now (WAL-logged as
// an explicit boundary on a durable hub).
func (hs *StreamHandle) Flush(now int64) error {
	return hs.FlushContext(context.Background(), now)
}

// FlushContext is Flush with trace propagation (see AddContext).
func (hs *StreamHandle) FlushContext(ctx context.Context, now int64) error {
	return hs.do(&writeOp{kind: opFlush, now: now, tr: trace.FromContext(ctx)}).err
}

// SwapModel replaces the topic model. It is a commit barrier: it runs
// alone, after every operation enqueued before it. It is rejected on a
// durable stream: persisted state is fingerprinted against one model, and
// recovery would re-open the swapped stream with the original — restart
// the hub (OpenHub) with the new model instead.
func (hs *StreamHandle) SwapModel(m *Model) error {
	return hs.do(&writeOp{kind: opSwapModel, model: m}).err
}

// Checkpoint forces an immediate checkpoint: the stream's full state is
// serialized, the snapshot atomically replaces the previous one, and the
// WAL is truncated. It is a commit barrier — every operation enqueued
// before it is applied and WAL-logged first, so the checkpoint covers a
// fully drained prefix. It fails with ErrPersistDisabled on an in-memory
// hub. The returned stats reflect the stream just after the checkpoint.
func (hs *StreamHandle) Checkpoint() (PersistStats, error) {
	return hs.CheckpointContext(context.Background())
}

// CheckpointContext is Checkpoint with trace propagation (see AddContext).
func (hs *StreamHandle) CheckpointContext(ctx context.Context) (PersistStats, error) {
	op := hs.do(&writeOp{kind: opCheckpoint, tr: trace.FromContext(ctx)})
	return op.ps, op.err
}

// Subscribe registers a standing query (see Stream.Subscribe) through the
// writer pipeline, so any goroutine may call it.
//
// Handlers fire on the stream's writer goroutine inside Add/Flush: a
// handler must not call the handle's write methods (the writer cannot
// drain its own queue — self-deadlock). To manage subscriptions from
// within a handler, cancel the subscription's context or use the Stream's
// own Subscribe/Unsubscribe — the handler is already on the writer
// goroutine, and both are re-entrancy-safe there.
func (hs *StreamHandle) Subscribe(ctx context.Context, q Query, every time.Duration, handler func(Result), opts ...SubscribeOption) (*Subscription, error) {
	op := hs.do(&writeOp{kind: opSubscribe, ctx: ctx, q: q, every: every, handler: handler, sopts: opts, tr: trace.FromContext(ctx)})
	return op.sub, op.err
}

// Unsubscribe removes a standing query, ordered with the writers. It is a
// no-op on a closed handle.
func (hs *StreamHandle) Unsubscribe(sub *Subscription) {
	hs.do(&writeOp{kind: opUnsubscribe, sub: sub})
}

// Hibernate checkpoints the stream and releases its in-memory state —
// window, archive, scorer caches, both ranked-list buffers — while the
// handle stays registered: the next Add, Query or Subscribe transparently
// reactivates it from the checkpoint (see DESIGN.md §11). Idempotent on
// an already-hibernated stream. It fails with ErrPersistDisabled on an
// in-memory hub and with ErrStreamBusy while standing queries are
// registered (unsubscribe them first). In-flight queries that pinned the
// stream's snapshot complete unaffected. Hubs with a residency budget
// call this automatically on the coldest streams; it is also useful
// directly when the caller knows a stream is going idle.
func (hs *StreamHandle) Hibernate() error {
	return hs.HibernateContext(context.Background())
}

// HibernateContext is Hibernate with trace propagation (see AddContext).
func (hs *StreamHandle) HibernateContext(ctx context.Context) error {
	return hs.do(&writeOp{kind: opHibernate, tr: trace.FromContext(ctx)}).err
}

// Query answers a k-SIR query. Against a resident stream it never enters
// the writer pipeline: like Stream.Query it pins the published snapshot,
// so queries on any number of handles run in parallel with each other and
// with ingestion. Against a hibernated stream it first reactivates the
// stream through the pipeline (one activation, however many queries race
// it), then runs lock-free as usual.
func (hs *StreamHandle) Query(ctx context.Context, q Query) (Result, error) {
	if hs.closed.Load() {
		return Result{}, fmt.Errorf("%w: %q", ErrStreamClosed, hs.name)
	}
	st := hs.stp.Load()
	if st == nil {
		var err error
		if st, err = hs.ensureResident(ctx); err != nil {
			return Result{}, err
		}
	} else {
		hs.touch()
	}
	return st.Query(ctx, q)
}

// Explain recomputes a result's per-post contribution breakdown (see
// Stream.Explain). Lock-free like Query on a resident stream; reactivates
// a hibernated one.
func (hs *StreamHandle) Explain(res Result, q Query) ([]Explanation, error) {
	if hs.closed.Load() {
		return nil, fmt.Errorf("%w: %q", ErrStreamClosed, hs.name)
	}
	st := hs.stp.Load()
	if st == nil {
		var err error
		if st, err = hs.ensureResident(context.Background()); err != nil {
			return nil, err
		}
	} else {
		hs.touch()
	}
	return st.Explain(res, q)
}

// Stats reports the stream's counters as of the last published bucket,
// including the durability, writer-pipeline and residency counters.
// Lock-free like Query — and it NEVER reactivates a hibernated stream
// (monitoring sweeps across thousands of tenants must not churn the hot
// tier): a hibernated stream reports the engine counters captured at
// hibernation, and a cold-recovered stream that has never been touched
// reports them as zero until its first activation.
func (hs *StreamHandle) Stats() StreamStats {
	var s StreamStats
	st := hs.stp.Load()
	if st != nil {
		s = st.Stats()
	} else if last := hs.lastStats.Load(); last != nil {
		s = *last
		s.Subscriptions = 0 // hibernation refuses standing queries
	}
	if hs.pers != nil {
		s.Persist = hs.pers.stats()
	}
	s.Pipeline = PipelineStats{
		Ops:     hs.statOps.Load(),
		Batches: hs.statBatches.Load(),
	}
	if hs.ops != nil {
		s.Pipeline.QueueDepth = len(hs.ops)
	}
	if hs.pers != nil {
		s.Pipeline.Fsyncs = hs.pers.fsyncs()
	}
	s.Residency = ResidencyStats{
		Resident:             st != nil,
		Hibernations:         hs.hibernations.Load(),
		Activations:          hs.activations.Load(),
		LastActivation:       time.Duration(hs.lastActivationNs.Load()),
		ResidentBytes:        hs.residentBytes.Load(),
		PrefetchActivations:  hs.prefetchActivations.Load(),
		PrefetchHits:         hs.prefetchHits.Load(),
		PrefetchMisses:       hs.prefetchMisses.Load(),
		GhostHits:            hs.ghostHits.Load(),
		SecondChanceSaves:    hs.secondChanceSaves.Load(),
		LazyMaterializations: hs.lazyMaterializations.Load(),
	}
	return s
}

// ResidencyStats reports a hub-managed stream's hot/cold residency state
// and transition counters (zero-valued on a raw Stream, which is always
// resident). See DESIGN.md §11.
type ResidencyStats struct {
	// Resident says whether the stream is currently loaded in memory.
	Resident bool
	// Hibernations and Activations count residency transitions over the
	// handle's lifetime (a cold-recovered stream starts at zero on both).
	Hibernations int64
	Activations  int64
	// LastActivation is the wall-clock cost of the most recent
	// reactivation — checkpoint load plus WAL tail replay (0 before the
	// first one).
	LastActivation time.Duration
	// ResidentBytes approximates the stream's in-memory footprint as of
	// its last commit (0 while hibernated). Advisory — element payloads
	// and window bookkeeping, not exact heap usage — and intentionally
	// excluded from exported state, so it never perturbs checkpoint
	// equality.
	ResidentBytes int64
	// PrefetchActivations counts activations initiated by the predictive
	// prefetcher; PrefetchHits of those were demand-touched while still
	// resident (the caller skipped the activation latency entirely),
	// PrefetchMisses were hibernated again untouched or arrived after
	// demand already had the stream hot.
	PrefetchActivations int64
	PrefetchHits        int64
	PrefetchMisses      int64
	// GhostHits counts reactivations that found the stream's name on the
	// ghost list of recent evictions — each one a stream the policy let
	// go just before it was wanted again (eviction regret).
	GhostHits int64
	// SecondChanceSaves counts eviction passes that skipped this stream
	// because its second-chance bit (or an in-flight prefetch) protected
	// it — the clock policy's scan resistance at work.
	SecondChanceSaves int64
	// LazyMaterializations counts deferred back-buffer builds paid off
	// the activation critical path (background task, first write, or WAL
	// tail replay).
	LazyMaterializations int64
}

// Done returns a channel closed when the stream is closed out of the Hub
// — the signal long-lived consumers (e.g. SSE connections) select on to
// shut down instead of waiting on a stream that will never ingest again.
func (hs *StreamHandle) Done() <-chan struct{} { return hs.done }
