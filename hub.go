package ksir

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Hub is a named, multi-tenant registry of streams — the deployment §2
// motivates ("thousands of users submit different queries at the same
// time") widened to many tenants: each scenario (a city's feed, one
// conference's papers, a product's mentions) gets its own named stream
// with its own window, model and standing queries.
//
// Hub also moves the single-writer discipline into the library: every
// stream is wrapped in a StreamHandle whose write operations (Add,
// AddBatch, Flush, SwapModel, Subscribe, Unsubscribe) are serialized by a
// per-stream mutex, so wire servers and multi-goroutine producers stop
// hand-rolling their own locks. Queries stay lock-free (they read the
// engine's published snapshot) and never contend with writers — on the
// same stream or any other.
//
// A Hub opened with OpenHub is additionally durable: stream state is
// write-ahead logged and checkpointed under a data directory, and
// recovered on the next OpenHub (see persistence.go).
//
// All Hub methods are safe for concurrent use.
type Hub struct {
	mu      sync.RWMutex
	streams map[string]*StreamHandle
	// p is the durability configuration (nil for an in-memory hub).
	p *hubPersist
}

// NewHub creates an empty registry.
func NewHub() *Hub {
	return &Hub{streams: make(map[string]*StreamHandle)}
}

// validName rejects names that cannot round-trip through a URL path
// segment or an index listing.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty stream name", ErrBadOptions)
	}
	if len(name) > 128 {
		return fmt.Errorf("%w: stream name longer than 128 bytes", ErrBadOptions)
	}
	if strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("%w: stream name %q contains '/' or a space", ErrBadOptions, name)
	}
	// Control characters (CR/LF/TAB/...) would survive into protocol
	// lines — SSE comments, logs, listings — as raw line breaks.
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("%w: stream name contains control character %q", ErrBadOptions, r)
		}
	}
	// "." and ".." survive url.PathEscape but are path-cleaned away by
	// HTTP routers, leaving the stream unreachable over the wire.
	if name == "." || name == ".." {
		return fmt.Errorf("%w: stream name %q is a path dot segment", ErrBadOptions, name)
	}
	return nil
}

// Create registers a new stream under name, built over m with the given
// options. It fails with ErrStreamExists if the name is taken and
// ErrBadOptions for an invalid name or configuration. On a durable hub the
// stream's directory, manifest and WAL are provisioned before Create
// returns (and a leftover directory for the name is ErrStreamExists —
// closed streams keep their durable state).
func (h *Hub) Create(name string, m *Model, opts Options, sopts ...StreamOption) (*StreamHandle, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	st, err := New(m, opts, sopts...)
	if err != nil {
		return nil, err
	}
	return h.registerPersistent(name, st)
}

// Adopt registers an existing stream under name. The caller must stop
// writing to st directly: after Adopt, all writes go through the returned
// handle (which serializes them). On a durable hub the adopted stream's
// current state is checkpointed immediately, so it is durable from the
// moment Adopt returns.
func (h *Hub) Adopt(name string, st *Stream) (*StreamHandle, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("%w: nil stream", ErrBadOptions)
	}
	return h.registerPersistent(name, st)
}

// registerPersistent registers the stream and, on a durable hub,
// provisions its on-disk state first — directory, manifest, WAL, and the
// initial checkpoint when the stream already has ingested state (Adopt).
// Provisioning happens under the hub lock, before the handle is
// reachable through Get: a concurrently created handle can never be
// observed without its persistence attached (writes on it would bypass
// the WAL).
func (h *Hub) registerPersistent(name string, st *Stream) (*StreamHandle, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.streams[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
	}
	hs := &StreamHandle{name: name, st: st, done: make(chan struct{})}
	if h.p != nil {
		pers, err := h.p.initStream(name, st)
		if err != nil {
			return nil, err
		}
		hs.pers = pers
	}
	h.streams[name] = hs
	return hs, nil
}

func (h *Hub) register(name string, st *Stream) (*StreamHandle, error) {
	return h.registerWith(name, st, nil)
}

// registerWith inserts a handle with its persistence state already
// attached (pers may be nil for in-memory streams).
func (h *Hub) registerWith(name string, st *Stream, pers *streamPersist) (*StreamHandle, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.streams[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
	}
	hs := &StreamHandle{name: name, st: st, done: make(chan struct{}), pers: pers}
	h.streams[name] = hs
	return hs, nil
}

// Get returns the handle registered under name, or ErrUnknownStream.
func (h *Hub) Get(name string) (*StreamHandle, error) {
	h.mu.RLock()
	hs, ok := h.streams[name]
	h.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	return hs, nil
}

// List returns the registered stream names, sorted.
func (h *Hub) List() []string {
	h.mu.RLock()
	names := make([]string, 0, len(h.streams))
	for name := range h.streams {
		names = append(names, name)
	}
	h.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered streams.
func (h *Hub) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.streams)
}

// Close unregisters name and marks its handle closed: in-flight operations
// finish, subsequent ones fail with ErrStreamClosed. It returns
// ErrUnknownStream for a name that was never registered (or already
// closed). On a durable hub, Close waits for the in-flight write (if any),
// takes a final checkpoint and releases the stream's WAL — the durable
// state stays on disk and is recovered by the next OpenHub; a checkpoint
// failure is reported (wrapping ErrPersist) but the stream still closes.
func (h *Hub) Close(name string) error {
	h.mu.Lock()
	hs, ok := h.streams[name]
	delete(h.streams, name)
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	var perr error
	if hs.pers != nil {
		// The writer mutex serializes the final checkpoint behind any
		// in-flight write; the closed flag set under it fences later ones.
		hs.mu.Lock()
		hs.closed.Store(true)
		perr = hs.pers.finalize(hs.st)
		hs.mu.Unlock()
	} else {
		hs.closed.Store(true)
	}
	close(hs.done)
	return perr
}

// CloseAll closes every registered stream — the graceful-shutdown sweep:
// on a durable hub each stream takes its final checkpoint, and every
// handle's Done channel closes so SSE consumers and other long-lived
// readers shut down. Errors are joined; streams close regardless.
func (h *Hub) CloseAll() error {
	var errs []error
	for _, name := range h.List() {
		if err := h.Close(name); err != nil && !errors.Is(err, ErrUnknownStream) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// StreamHandle is a Hub-managed stream. Write operations are serialized by
// an internal mutex (honoring the Stream's one-writer contract), so any
// number of goroutines may call them; queries and stats bypass the mutex
// entirely and read the published snapshot, as on a raw Stream.
type StreamHandle struct {
	name string

	mu     sync.Mutex // serializes the writer side
	st     *Stream
	closed atomic.Bool   // flag, not mutex-guarded: reads must never contend with writers
	done   chan struct{} // closed by Hub.Close; see Done
	// pers is the stream's durability state (nil on an in-memory hub).
	// The serialized writer path is the WAL append point: every accepted
	// write is logged here, under mu, before the call returns.
	pers *streamPersist
}

// Name returns the name the handle is registered under.
func (hs *StreamHandle) Name() string { return hs.name }

// Stream returns the underlying stream for read-only use (Model, Options,
// Explain). Callers must not invoke its write methods directly — that
// would bypass the handle's serialization.
func (hs *StreamHandle) Stream() *Stream { return hs.st }

// write runs fn under the writer mutex, failing fast once closed.
func (hs *StreamHandle) write(fn func(*Stream) error) error {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.closed.Load() {
		return fmt.Errorf("%w: %q", ErrStreamClosed, hs.name)
	}
	return fn(hs.st)
}

// Add appends one post (serialized with the handle's other writers). On a
// durable hub the accepted post is WAL-logged before Add returns; a
// logging failure is reported (wrapping ErrPersist) with the post already
// applied in memory.
func (hs *StreamHandle) Add(p Post) error {
	return hs.write(func(st *Stream) error {
		if err := st.Add(p); err != nil {
			return err
		}
		if hs.pers != nil {
			if err := hs.pers.logPost(st, p); err != nil {
				return err
			}
			return hs.pers.maybeCheckpoint(st)
		}
		return nil
	})
}

// AddBatch appends posts in order, stopping at the first rejected post and
// reporting how many were accepted. On a durable hub the accepted prefix
// is WAL-logged even when a later post is rejected; if both an ingest
// rejection and a logging failure occur, the returned error joins them
// (errors.Is matches each), and on a logging failure the posts logged
// successfully remain durable while the rest are in memory only.
func (hs *StreamHandle) AddBatch(posts []Post) (accepted int, err error) {
	werr := hs.write(func(st *Stream) error {
		accepted, err = st.AddBatch(posts)
		if hs.pers != nil {
			// Log the whole accepted prefix before considering a
			// checkpoint: the batch was already applied in memory, so a
			// mid-prefix checkpoint would capture posts whose WAL records
			// land after it — records past the watermark that replay
			// would then wrongly re-apply.
			var logErr error
			for _, p := range posts[:accepted] {
				if logErr = hs.pers.logPost(st, p); logErr != nil {
					break
				}
			}
			if logErr == nil {
				logErr = hs.pers.maybeCheckpoint(st)
			}
			if logErr != nil {
				err = errors.Join(err, logErr)
			}
		}
		return err
	})
	if werr != nil {
		err = werr
	}
	return accepted, err
}

// Flush ingests everything buffered up to stream time now (WAL-logged as
// an explicit boundary on a durable hub).
func (hs *StreamHandle) Flush(now int64) error {
	return hs.write(func(st *Stream) error {
		if err := st.Flush(now); err != nil {
			return err
		}
		if hs.pers != nil {
			if err := hs.pers.logFlush(st, now); err != nil {
				return err
			}
			return hs.pers.maybeCheckpoint(st)
		}
		return nil
	})
}

// SwapModel replaces the topic model, serialized with the other writers.
// It is rejected on a durable stream: persisted state is fingerprinted
// against one model, and recovery would re-open the swapped stream with
// the original — restart the hub (OpenHub) with the new model instead.
func (hs *StreamHandle) SwapModel(m *Model) error {
	return hs.write(func(st *Stream) error {
		if hs.pers != nil {
			return fmt.Errorf("%w: SwapModel on persisted stream %q (re-open the hub with the new model)", ErrPersist, hs.name)
		}
		return st.SwapModel(m)
	})
}

// Checkpoint forces an immediate checkpoint: the stream's full state is
// serialized, the snapshot atomically replaces the previous one, and the
// WAL is truncated. It fails with ErrPersistDisabled on an in-memory hub.
// The returned stats reflect the stream just after the checkpoint.
func (hs *StreamHandle) Checkpoint() (PersistStats, error) {
	var ps PersistStats
	err := hs.write(func(st *Stream) error {
		if hs.pers == nil {
			return fmt.Errorf("%w: stream %q", ErrPersistDisabled, hs.name)
		}
		if err := hs.pers.checkpoint(st); err != nil {
			return err
		}
		ps = hs.pers.stats()
		return nil
	})
	return ps, err
}

// Subscribe registers a standing query (see Stream.Subscribe), serialized
// with the handle's writers so any goroutine may call it.
//
// Handlers fire inside Add/Flush while the handle's writer mutex is held:
// a handler must not call the handle's write methods (self-deadlock). To
// manage subscriptions from within a handler, cancel the subscription's
// context or use the Stream's own Subscribe/Unsubscribe — the handler is
// already on the writer goroutine, and both are re-entrancy-safe there.
func (hs *StreamHandle) Subscribe(ctx context.Context, q Query, every time.Duration, handler func(Result), opts ...SubscribeOption) (*Subscription, error) {
	var sub *Subscription
	err := hs.write(func(st *Stream) error {
		var err error
		sub, err = st.Subscribe(ctx, q, every, handler, opts...)
		return err
	})
	return sub, err
}

// Unsubscribe removes a standing query, serialized with the writers. It is
// a no-op on a closed handle.
func (hs *StreamHandle) Unsubscribe(sub *Subscription) {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.closed.Load() {
		return
	}
	hs.st.Unsubscribe(sub)
}

// Query answers a k-SIR query. It takes no lock: like Stream.Query it pins
// the published snapshot, so queries on any number of handles run in
// parallel with each other and with ingestion.
func (hs *StreamHandle) Query(ctx context.Context, q Query) (Result, error) {
	if hs.closed.Load() {
		return Result{}, fmt.Errorf("%w: %q", ErrStreamClosed, hs.name)
	}
	return hs.st.Query(ctx, q)
}

// Explain recomputes a result's per-post contribution breakdown (see
// Stream.Explain). Lock-free like Query.
func (hs *StreamHandle) Explain(res Result, q Query) ([]Explanation, error) {
	if hs.closed.Load() {
		return nil, fmt.Errorf("%w: %q", ErrStreamClosed, hs.name)
	}
	return hs.st.Explain(res, q)
}

// Stats reports the stream's counters as of the last published bucket,
// including the durability counters on a persistent hub. Lock-free like
// Query.
func (hs *StreamHandle) Stats() StreamStats {
	s := hs.st.Stats()
	if hs.pers != nil {
		s.Persist = hs.pers.stats()
	}
	return s
}

// Done returns a channel closed when the stream is closed out of the Hub
// — the signal long-lived consumers (e.g. SSE connections) select on to
// shut down instead of waiting on a stream that will never ingest again.
func (hs *StreamHandle) Done() <-chan struct{} { return hs.done }
