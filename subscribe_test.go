package ksir

import (
	"testing"
	"time"
)

func TestSubscribeFiresOnSchedule(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	var fired []int64
	sub, err := st.Subscribe(Query{K: 2, Keywords: []string{"goal"}}, 5*time.Minute,
		func(res Result) { fired = append(fired, st.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions() != 1 {
		t.Fatal("subscription not registered")
	}
	// 30 minutes of posts, one per minute.
	for i := 0; i < 30; i++ {
		text := "goal striker league"
		if i%2 == 1 {
			text = "dunk rebound playoffs"
		}
		if err := st.Add(Post{ID: int64(i + 1), Time: int64(1 + i*60), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(1800); err != nil {
		t.Fatal(err)
	}
	// Refresh every 5 min over 30 min ⇒ ~6 firings.
	if len(fired) < 4 || len(fired) > 7 {
		t.Errorf("fired %d times at %v, want ~6", len(fired), fired)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Errorf("firings not strictly ordered: %v", fired)
		}
	}
	st.Unsubscribe(sub)
	if st.Subscriptions() != 0 {
		t.Error("unsubscribe failed")
	}
	// No further firings.
	n := len(fired)
	if err := st.Add(Post{ID: 99, Time: 2400, Text: "goal"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(3000); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n {
		t.Error("fired after unsubscribe")
	}
}

func TestSubscribeOnlyOnChange(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	_, err = st.Subscribe(Query{K: 1, Keywords: []string{"goal"}}, time.Minute,
		func(res Result) { results = append(results, res) }, OnlyOnChange())
	if err != nil {
		t.Fatal(err)
	}
	// One matching post, then a long quiet stretch: the result set stops
	// changing so refreshes must be suppressed.
	if err := st.Add(Post{ID: 1, Time: 30, Text: "goal striker league"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(600); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("fired %d times, want 1 (unchanged results suppressed)", len(results))
	}
	// A better post arrives: fires again.
	if err := st.Add(Post{ID: 2, Time: 660, Text: "goal goal striker league derby"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(780); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("fired %d times after change, want 2", len(results))
	}
	if results[1].Posts[0].ID != 2 {
		t.Errorf("second firing has post %d, want 2", results[1].Posts[0].ID)
	}
}

func TestSubscribeValidation(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := func(Result) {}
	if _, err := st.Subscribe(Query{K: 0, Keywords: []string{"x"}}, time.Hour, h); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := st.Subscribe(Query{K: 1}, time.Hour, h); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := st.Subscribe(Query{K: 1, Keywords: []string{"x"}}, time.Second, h); err == nil {
		t.Error("interval below bucket accepted")
	}
	if _, err := st.Subscribe(Query{K: 1, Keywords: []string{"x"}}, time.Hour, nil); err == nil {
		t.Error("nil handler accepted")
	}
	st.Unsubscribe(nil) // must not panic
}

func TestExplainResult(t *testing.T) {
	st := newTwoTopicStream(t)
	q := Query{K: 3, Keywords: []string{"goal", "league"}}
	res, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := st.Explain(res, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != len(res.Posts) {
		t.Fatalf("explanations = %d, posts = %d", len(ex), len(res.Posts))
	}
	var total float64
	for i, e := range ex {
		if e.Post.ID != res.Posts[i].ID {
			t.Errorf("explanation %d order mismatch", i)
		}
		if e.Gain < 0 || e.NewWords < 0 {
			t.Errorf("bad explanation %+v", e)
		}
		total += e.Gain
	}
	if total <= 0 || total > res.Score*1.0001 || total < res.Score*0.9999 {
		t.Errorf("explanations total %v, result score %v", total, res.Score)
	}
	// First selection covers new words.
	if ex[0].NewWords == 0 {
		t.Error("first post must contribute new words")
	}
	// Explain with a bogus query errors.
	if _, err := st.Explain(res, Query{K: 3}); err == nil {
		t.Error("query without keywords accepted")
	}
}
