package ksir

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSubscribeFiresOnSchedule(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	var fired []int64
	sub, err := st.Subscribe(context.Background(), Query{K: 2, Keywords: []string{"goal"}}, 5*time.Minute,
		func(res Result) { fired = append(fired, st.Now()) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions() != 1 {
		t.Fatal("subscription not registered")
	}
	// 30 minutes of posts, one per minute.
	for i := 0; i < 30; i++ {
		text := "goal striker league"
		if i%2 == 1 {
			text = "dunk rebound playoffs"
		}
		if err := st.Add(Post{ID: int64(i + 1), Time: int64(1 + i*60), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(1800); err != nil {
		t.Fatal(err)
	}
	// Refresh every 5 min over 30 min ⇒ ~6 firings.
	if len(fired) < 4 || len(fired) > 7 {
		t.Errorf("fired %d times at %v, want ~6", len(fired), fired)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Errorf("firings not strictly ordered: %v", fired)
		}
	}
	st.Unsubscribe(sub)
	if st.Subscriptions() != 0 {
		t.Error("unsubscribe failed")
	}
	// No further firings.
	n := len(fired)
	if err := st.Add(Post{ID: 99, Time: 2400, Text: "goal"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(3000); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n {
		t.Error("fired after unsubscribe")
	}
}

func TestSubscribeOnlyOnChange(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	_, err = st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"goal"}}, time.Minute,
		func(res Result) { results = append(results, res) }, OnlyOnChange())
	if err != nil {
		t.Fatal(err)
	}
	// One matching post, then a long quiet stretch: the result set stops
	// changing so refreshes must be suppressed.
	if err := st.Add(Post{ID: 1, Time: 30, Text: "goal striker league"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(600); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("fired %d times, want 1 (unchanged results suppressed)", len(results))
	}
	// A better post arrives: fires again.
	if err := st.Add(Post{ID: 2, Time: 660, Text: "goal goal striker league derby"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(780); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("fired %d times after change, want 2", len(results))
	}
	if results[1].Posts[0].ID != 2 {
		t.Errorf("second firing has post %d, want 2", results[1].Posts[0].ID)
	}
}

func TestSubscribeValidation(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := func(Result) {}
	if _, err := st.Subscribe(context.Background(), Query{K: 0, Keywords: []string{"x"}}, time.Hour, h); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := st.Subscribe(context.Background(), Query{K: 1}, time.Hour, h); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"x"}}, time.Second, h); err == nil {
		t.Error("interval below bucket accepted")
	}
	if _, err := st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"x"}}, time.Hour, nil); err == nil {
		t.Error("nil handler accepted")
	}
	st.Unsubscribe(nil) // must not panic
}

// A failing standing query must not abort the ingest that triggered it:
// the error goes to the subscription's hook, healthy subscriptions still
// fire, and the bucket lands.
func TestSubscriptionErrorIsolation(t *testing.T) {
	var streamHookCalls int
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2},
		WithSubscriptionErrorHandler(func(_ *Subscription, err error) {
			streamHookCalls++
			if !errors.Is(err, ErrBadQuery) {
				t.Errorf("stream hook got %v, want ErrBadQuery", err)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}

	// "zzzz" passes Subscribe validation (non-empty keywords) but fails at
	// refresh time: no keyword is in the model vocabulary.
	var subHookErrs []error
	bad, err := st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"zzzz"}}, time.Minute,
		func(Result) { t.Error("failing subscription delivered a result") },
		OnError(func(err error) { subHookErrs = append(subHookErrs, err) }))
	if err != nil {
		t.Fatal(err)
	}
	// A second failing subscription without its own hook falls back to the
	// stream-wide handler.
	if _, err := st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"qqqq"}}, time.Minute,
		func(Result) { t.Error("failing subscription delivered a result") }); err != nil {
		t.Fatal(err)
	}
	var good []Result
	if _, err := st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"goal"}}, time.Minute,
		func(res Result) { good = append(good, res) }); err != nil {
		t.Fatal(err)
	}

	if err := st.Add(Post{ID: 1, Time: 30, Text: "goal striker league"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(120); err != nil {
		t.Fatalf("ingest aborted by failing subscription: %v", err)
	}
	if len(good) == 0 {
		t.Error("healthy subscription starved by the failing one")
	}
	if len(subHookErrs) == 0 || !errors.Is(subHookErrs[0], ErrBadQuery) {
		t.Errorf("per-subscription hook errs = %v, want ErrBadQuery", subHookErrs)
	}
	if streamHookCalls == 0 {
		t.Error("stream-wide hook never called for the hookless subscription")
	}
	if bad.Failures() == 0 {
		t.Error("failure counter not incremented")
	}
	// Each delivered result carries the bucket sequence it was computed at.
	for _, res := range good {
		if res.Bucket <= 0 {
			t.Errorf("subscription result missing bucket seq: %+v", res.Bucket)
		}
	}
}

// A subscription's context bounds its lifetime: once cancelled it stops
// firing and is removed at the next bucket boundary.
func TestSubscribeContextCancel(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var fired int
	if _, err := st.Subscribe(ctx, Query{K: 1, Keywords: []string{"goal"}}, time.Minute,
		func(Result) { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 1, Time: 30, Text: "goal striker"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(120); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("subscription never fired before cancel")
	}
	n := fired
	cancel()
	if err := st.Add(Post{ID: 2, Time: 200, Text: "goal league"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(300); err != nil {
		t.Fatal(err)
	}
	if fired != n {
		t.Error("subscription fired after its context was cancelled")
	}
	if st.Subscriptions() != 0 {
		t.Errorf("cancelled subscription still registered: %d", st.Subscriptions())
	}
}

// Handlers run on the writer goroutine mid-sweep; a handler
// unsubscribing itself (one-shot standing query) must neither fire again
// nor be resurrected by the sweep's bookkeeping.
func TestSubscriptionReentrantUnsubscribe(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	var fired int
	var sub *Subscription
	sub, err = st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"goal"}}, time.Minute,
		func(Result) {
			fired++
			st.Unsubscribe(sub) // one-shot
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 1, Time: 30, Text: "goal striker"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(120); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if st.Subscriptions() != 0 {
		t.Fatalf("subscription resurrected: %d registered", st.Subscriptions())
	}
	// Further changing buckets must not re-fire the removed subscription.
	if err := st.Add(Post{ID: 2, Time: 150, Text: "goal goal league"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(240); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("one-shot subscription fired %d times", fired)
	}
}

// A handler registering a new standing query mid-sweep: the new
// subscription must survive the sweep (not be dropped) and start firing
// at a later bucket boundary.
func TestSubscriptionReentrantSubscribe(t *testing.T) {
	st, err := New(trainTestModel(t), Options{Window: time.Hour, Bucket: time.Minute, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	var childFired int
	registered := false
	_, err = st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"goal"}}, time.Minute,
		func(Result) {
			if registered {
				return
			}
			registered = true
			if _, err := st.Subscribe(context.Background(), Query{K: 1, Keywords: []string{"goal"}}, time.Minute,
				func(Result) { childFired++ }); err != nil {
				t.Errorf("re-entrant subscribe: %v", err)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(Post{ID: 1, Time: 30, Text: "goal striker"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(120); err != nil {
		t.Fatal(err)
	}
	if !registered {
		t.Fatal("parent never fired")
	}
	if st.Subscriptions() != 2 {
		t.Fatalf("re-entrant subscription dropped: %d registered", st.Subscriptions())
	}
	if err := st.Add(Post{ID: 2, Time: 150, Text: "goal goal league"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(300); err != nil {
		t.Fatal(err)
	}
	if childFired == 0 {
		t.Error("re-entrant subscription never fired")
	}
}

func TestExplainResult(t *testing.T) {
	st := newTwoTopicStream(t)
	q := Query{K: 3, Keywords: []string{"goal", "league"}}
	res, err := st.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := st.Explain(res, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != len(res.Posts) {
		t.Fatalf("explanations = %d, posts = %d", len(ex), len(res.Posts))
	}
	var total float64
	for i, e := range ex {
		if e.Post.ID != res.Posts[i].ID {
			t.Errorf("explanation %d order mismatch", i)
		}
		if e.Gain < 0 || e.NewWords < 0 {
			t.Errorf("bad explanation %+v", e)
		}
		total += e.Gain
	}
	if total <= 0 || total > res.Score*1.0001 || total < res.Score*0.9999 {
		t.Errorf("explanations total %v, result score %v", total, res.Score)
	}
	// First selection covers new words.
	if ex[0].NewWords == 0 {
		t.Error("first post must contribute new words")
	}
	// Explain with a bogus query errors.
	if _, err := st.Explain(res, Query{K: 3}); err == nil {
		t.Error("query without keywords accepted")
	}
}
